package realtrain

import (
	"math"
	"math/rand"
	"testing"
)

func TestAttentionForwardIsDistribution(t *testing.T) {
	m := NewAttention(32, 16, 4, 1)
	p := m.Forward(m.Params, []int{1, 5, 9, 2})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("prob %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestAttentionParamLayout(t *testing.T) {
	m := NewAttention(32, 16, 4, 1)
	want := 32*16 + 3*16*16 + 16*4 + 4
	if m.NumParams() != want || len(m.Params) != want {
		t.Fatalf("params = %d, want %d", m.NumParams(), want)
	}
	if len(m.Parameters()) != want {
		t.Fatal("Parameters accessor")
	}
}

// TestAttentionGradientsMatchFiniteDifferences validates the hand-derived
// attention backward (softmax(QK^T)V, projections, pooling, classifier).
func TestAttentionGradientsMatchFiniteDifferences(t *testing.T) {
	ds := NewDataset(DatasetConfig{Vocab: 24, TokensPer: 5, Dim: 8, Classes: 3, Train: 20, Test: 5, Seed: 3})
	m := NewAttention(24, 8, 3, 4)
	batch := []int{0, 1, 2}
	grads := make([]float32, m.NumParams())
	m.LossAndGrad(m.Params, ds, batch, grads)

	rng := rand.New(rand.NewSource(9))
	const eps = 1e-3
	checked := 0
	for trial := 0; trial < 200 && checked < 20; trial++ {
		i := rng.Intn(m.NumParams())
		orig := m.Params[i]
		m.Params[i] = orig + eps
		lp := m.LossAndGrad(m.Params, ds, batch, make([]float32, m.NumParams()))
		m.Params[i] = orig - eps
		lm := m.LossAndGrad(m.Params, ds, batch, make([]float32, m.NumParams()))
		m.Params[i] = orig
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd) < 1e-3 || math.Abs(float64(grads[i])) < 1e-3 {
			continue
		}
		rel := math.Abs(fd-float64(grads[i])) / math.Max(math.Abs(fd), math.Abs(float64(grads[i])))
		if rel > 0.08 {
			t.Fatalf("param %d: analytic %v vs FD %v (rel %.3f)", i, grads[i], fd, rel)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

func TestAttentionArchLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	r := Run(Config{Steps: 150, Seed: 11, Arch: "attention", PreSteps: 800})
	if r.FinalAcc < 0.4 {
		t.Fatalf("attention proxy accuracy %.3f", r.FinalAcc)
	}
}

// TestAttentionDBAConvergence: the Table V property holds on the
// transformer-family architecture too.
func TestAttentionDBAConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	base := Run(Config{Steps: 300, Seed: 21, Arch: "attention", PreSteps: 800})
	red := Run(Config{Steps: 300, Seed: 21, Arch: "attention", PreSteps: 800, DBA: true, ActAfterSteps: 100})
	if diff := base.FinalAcc - red.FinalAcc; diff > 0.10 {
		t.Fatalf("DBA cost %.3f accuracy on attention (%.3f -> %.3f)", diff, base.FinalAcc, red.FinalAcc)
	}
}

func TestUnknownArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{Steps: 1, PreSteps: 1, Arch: "rnn"})
}
