package realtrain

import (
	"errors"
	"math"
	"testing"

	"teco/internal/optim"
)

// TestFusedNaNIndexMatchesStandaloneScan pins the fused epilogue's index
// semantics: when ADAM propagates corruption into several master words in
// the same step, the CorruptionError must carry the FIRST offending index
// — exactly what the standalone optim.FirstNonFiniteWorkers scan reports —
// because the per-chunk first hits fold in ascending chunk order.
func TestFusedNaNIndexMatchesStandaloneScan(t *testing.T) {
	cfg := fastCfg(29)
	cfg.SDCChecks = true
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runTo(t, tr, 5)
	// Poison the second moment at two separated indices; the next update
	// turns both parameters non-finite. Recompute checksums as if the
	// corruption happened inside a legitimate write window, so only the
	// post-step NaN scan can catch it.
	_, v := tr.Moments()
	for _, idx := range []int{911, 13} {
		mask := math.Float32bits(v[idx]) ^ 0x7FC00000
		if err := tr.CorruptWord("adam.v", idx, mask); err != nil {
			t.Fatal(err)
		}
	}
	tr.recordSums()
	err = tr.Step()
	var ce *CorruptionError
	if !errors.As(err, &ce) || !ce.NonFinite || ce.Tensor != "master" {
		t.Fatalf("Step() = %v, want non-finite CorruptionError on master", err)
	}
	// The master copy now holds the propagated NaNs (the step aborted
	// after the fused pass); the standalone scan over it defines the
	// expected index.
	want := optim.FirstNonFiniteWorkers(tr.MasterParams(), 1)
	if want < 0 {
		t.Fatal("master has no non-finite word after a NaN detection")
	}
	if ce.Index != want {
		t.Fatalf("fused scan reported index %d, standalone scan %d", ce.Index, want)
	}
	if ce.Index != 13 {
		t.Fatalf("first poisoned index is 13, detection reported %d", ce.Index)
	}
}
