package realtrain

import (
	"reflect"
	"strings"
	"testing"

	"teco/internal/conformance/check"
)

// schedBase is a short stack run; segment sizes with the default dataset
// are emb=131072 words, block=5120 words each, head=264 words.
func schedBase(layers int) Config {
	return Config{
		Arch: "stack", Layers: layers,
		Steps: 8, Batch: 8, PreSteps: 12, Seed: 13, SampleEvery: 2,
	}
}

// normalizeSched zeroes a Result's scheduling knobs so runs differing only
// in scheduling compare DeepEqual — the same normalization configTag
// applies.
func normalizeSched(r Result) Result {
	r.Config.SchedCacheWords = 0
	r.Config.SchedPrefetch = 0
	r.Config.SchedPolicy = ""
	r.Config.SchedPinned = 0
	return r
}

func runTrainer(t *testing.T, cfg Config) (*Trainer, Result) {
	t.Helper()
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return tr, tr.Result()
}

// TestSchedBitIdentityMLP asserts the scheduled single-block path (an MLP
// has no layer segmentation, so the scheduler sees one segment) is
// bit-identical to the plain trainer — the N=1 degradation guarantee.
func TestSchedBitIdentityMLP(t *testing.T) {
	check.Enable(t)
	base := Config{Steps: 10, PreSteps: 15, Seed: 21, SampleEvery: 3, DBA: true, ActAfterSteps: 4}
	wantTr, want := runTrainer(t, base)

	sched := base
	sched.SchedPrefetch = 1
	sched.SchedPolicy = "lru"
	gotTr, got := runTrainer(t, sched)
	if !reflect.DeepEqual(normalizeSched(got), normalizeSched(want)) {
		t.Fatal("scheduled single-block result diverged from plain trainer")
	}
	if !bitsEqual(gotTr.MasterParams(), wantTr.MasterParams()) {
		t.Fatal("scheduled single-block master params diverged")
	}
	if !bitsEqual(gotTr.ComputeParams(), wantTr.ComputeParams()) {
		t.Fatal("scheduled single-block compute params diverged")
	}
	st, ok := gotTr.SchedStats()
	if !ok || st.Segments != 1 {
		t.Fatalf("single-block scheduler stats %+v ok=%v", st, ok)
	}
	if _, ok := wantTr.SchedStats(); ok {
		t.Fatal("plain trainer reports scheduler stats")
	}
}

// TestSchedBitIdentityStack asserts every scheduling configuration — cache
// size, prefetch depth, eviction policy, pinning, with and without DBA —
// trains the stack to bit-identical parameters: scheduling only moves
// bytes around in time, never changes them.
func TestSchedBitIdentityStack(t *testing.T) {
	check.Enable(t)
	for name, mut := range map[string]func(*Config){
		"plain": func(c *Config) {},
		"dba":   func(c *Config) { c.DBA = true; c.ActAfterSteps = 3 },
	} {
		t.Run(name, func(t *testing.T) {
			base := schedBase(4)
			mut(&base)
			wantTr, want := runTrainer(t, base)

			for label, knobs := range map[string]Config{
				"unbounded-lru":  {SchedPolicy: "lru"},
				"tight-cache":    {SchedCacheWords: 132000},
				"tight-prefetch": {SchedCacheWords: 132000, SchedPrefetch: 2},
				"fifo":           {SchedCacheWords: 140000, SchedPrefetch: 1, SchedPolicy: "fifo"},
				"pinned-emb":     {SchedCacheWords: 140000, SchedPrefetch: 1, SchedPolicy: "pin", SchedPinned: 1},
				"deep-prefetch":  {SchedCacheWords: 145000, SchedPrefetch: 5},
			} {
				cfg := base
				cfg.SchedCacheWords = knobs.SchedCacheWords
				cfg.SchedPrefetch = knobs.SchedPrefetch
				cfg.SchedPolicy = knobs.SchedPolicy
				cfg.SchedPinned = knobs.SchedPinned
				gotTr, got := runTrainer(t, cfg)
				if !reflect.DeepEqual(normalizeSched(got), normalizeSched(want)) {
					t.Fatalf("%s: scheduled result diverged", label)
				}
				if !bitsEqual(gotTr.MasterParams(), wantTr.MasterParams()) {
					t.Fatalf("%s: master params diverged", label)
				}
				if !bitsEqual(gotTr.ComputeParams(), wantTr.ComputeParams()) {
					t.Fatalf("%s: compute params diverged", label)
				}
			}
		})
	}
}

// TestSchedGroupComposes asserts the scheduler composes with the PR 7
// data-parallel fabric: an MLP group whose trainer runs under scheduling
// knobs is still bit-identical to the plain single trainer.
func TestSchedGroupComposes(t *testing.T) {
	check.Enable(t)
	base := Config{Steps: 12, PreSteps: 15, Seed: 33, SampleEvery: 4}
	wantTr, want := runTrainer(t, base)

	sched := base
	sched.SchedPrefetch = 1
	g, res := runGroup(t, GroupConfig{Train: sched, Replicas: 2})
	if !reflect.DeepEqual(normalizeSched(res), normalizeSched(want)) {
		t.Fatal("scheduled group result diverged from plain trainer")
	}
	if !bitsEqual(g.Trainer().MasterParams(), wantTr.MasterParams()) {
		t.Fatal("scheduled group master params diverged")
	}
	if st, ok := g.Trainer().SchedStats(); !ok || st.Residency.Hits == 0 {
		t.Fatalf("group trainer scheduler inactive: %+v ok=%v", st, ok)
	}
}

// TestSchedStatsAccounting pins down the residency arithmetic of a bounded
// run: every segment is demand-used exactly three times per step (forward,
// backward, transfer), the full vector routes through the staging buffer
// each step, a too-small cache shows real miss/eviction churn, and block
// layers spill activations both ways.
func TestSchedStatsAccounting(t *testing.T) {
	check.Enable(t)
	cfg := schedBase(4)
	cfg.SchedCacheWords = 132000 // emb fits; blocks and head fight for the rest
	tr, _ := runTrainer(t, cfg)

	st, ok := tr.SchedStats()
	if !ok {
		t.Fatal("scheduler stats unavailable")
	}
	if st.Segments != cfg.Layers+2 {
		t.Fatalf("segments %d, want %d", st.Segments, cfg.Layers+2)
	}
	if st.CapacityWords != int64(cfg.SchedCacheWords) {
		t.Fatalf("capacity %d words, want %d", st.CapacityWords, cfg.SchedCacheWords)
	}
	steps := int64(cfg.Steps)
	for i, h := range st.Heat {
		if h != 3*steps {
			t.Fatalf("segment %d heat %d, want %d", i, h, 3*steps)
		}
	}
	n := int64(tr.model.NumParams())
	if st.TransferredWords != steps*n {
		t.Fatalf("transferred %d words, want %d", st.TransferredWords, steps*n)
	}
	if st.BufferSwaps == 0 || st.GradWords != steps*n {
		t.Fatalf("staging counters implausible: %+v", st)
	}
	if st.Residency.DemandMisses == 0 || st.Residency.Evictions == 0 {
		t.Fatalf("tight cache produced no churn: %+v", st.Residency)
	}
	if st.ActWords == 0 {
		t.Fatal("block layers spilled no activations")
	}
	if st.ResidentWords > st.CapacityWords {
		t.Fatalf("resident %d exceeds capacity %d", st.ResidentWords, st.CapacityWords)
	}
}

// TestSchedPrefetchConvertsMisses asserts the eager window does its job:
// with prefetch on, some demand uses that would have missed are absorbed
// as prefetch hits; with prefetch off, no prefetch traffic exists at all.
func TestSchedPrefetchConvertsMisses(t *testing.T) {
	cfg := schedBase(4)
	cfg.SchedCacheWords = 140000
	trOff, _ := runTrainer(t, cfg)
	off, _ := trOff.SchedStats()
	if off.Residency.PrefetchIssued != 0 || off.Residency.PrefetchHits != 0 {
		t.Fatalf("demand-only run issued prefetches: %+v", off.Residency)
	}

	cfg.SchedPrefetch = 2
	trOn, _ := runTrainer(t, cfg)
	on, _ := trOn.SchedStats()
	if on.Residency.PrefetchIssued == 0 || on.Residency.PrefetchHits == 0 {
		t.Fatalf("prefetch window produced no hits: %+v", on.Residency)
	}
	if on.Residency.DemandMisses >= off.Residency.DemandMisses {
		t.Fatalf("prefetch did not reduce demand misses: %d vs %d",
			on.Residency.DemandMisses, off.Residency.DemandMisses)
	}
}

// TestSchedConfigErrors asserts malformed scheduling configurations fail
// at construction, not mid-run.
func TestSchedConfigErrors(t *testing.T) {
	bad := schedBase(3)
	bad.SchedPolicy = "mru"
	if _, err := NewTrainer(bad); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("bad policy: err=%v", err)
	}

	small := schedBase(3)
	small.SchedCacheWords = 1000 // below the embedding segment
	if _, err := NewTrainer(small); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("undersized cache: err=%v", err)
	}

	pin := schedBase(3)
	pin.SchedPolicy = "pin"
	pin.SchedPinned = 1
	pin.SchedCacheWords = 132000 // emb pinned leaves no room for a working slot
	if _, err := NewTrainer(pin); err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("overpinned cache: err=%v", err)
	}
}

// TestSchedSnapshotAcrossPolicies asserts a snapshot taken under one
// scheduling configuration restores under any other (the knobs are outside
// the config fingerprint) and the continuation stays bit-identical.
func TestSchedSnapshotAcrossPolicies(t *testing.T) {
	check.Enable(t)
	cfg := schedBase(3)
	cfg.SchedCacheWords = 140000
	cfg.SchedPrefetch = 1

	ref, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !ref.Done() {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}

	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Snapshot()

	restoreCfg := cfg
	restoreCfg.SchedCacheWords = 0
	restoreCfg.SchedPrefetch = 0
	restoreCfg.SchedPolicy = "fifo"
	restored, err := NewTrainerFromSnapshot(restoreCfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	for !restored.Done() {
		if err := restored.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(normalizeSched(restored.Result()), normalizeSched(ref.Result())) {
		t.Fatal("cross-policy restore diverged from uninterrupted run")
	}
	if !bitsEqual(restored.MasterParams(), ref.MasterParams()) {
		t.Fatal("cross-policy restore master params diverged")
	}
}
