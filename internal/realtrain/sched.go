package realtrain

import (
	"fmt"

	"teco/internal/conformance/check"
	"teco/internal/dba"
	"teco/internal/staging"
)

// Per-layer offload scheduling for the functional trainer.
//
// The scheduler partitions the model's flat parameter vector into
// layer-granular segments (Segment) and drives each step's layer traversal
// through a capacity-bounded fast-tier residency model
// (staging.Residency): forward touches layers 0..S-1 with an eager
// prefetch window running ahead, backward touches them in reverse,
// gradients stream out through the staging gradient buffer in backward
// layer order, and the parameter refresh routes every segment's bytes
// through the staging double buffer.
//
// The scheduler is numerics-invariant by construction: a per-segment
// dba.MergeWords/copy over a tiling of the vector computes exactly the
// same bytes as the whole-vector transfer, in the same order — so cache
// size, prefetch depth, eviction policy and pin count NEVER change the
// trained model (the metamorphic suite asserts this bit-exactly), they
// only change which transfers would have been on the critical path. That
// is the same design point as Config.Workers, and like Workers the knobs
// are excluded from the config fingerprint so snapshots restore across
// scheduling configurations.

// Segment is one layer-granular span [Lo, Hi) of the flat parameter
// vector.
type Segment struct {
	Name   string
	Lo, Hi int
}

// segmented is implemented by models with a layer-granular parameter
// layout; anything else is scheduled as a single block.
type segmented interface {
	Segments() []Segment
}

// stageChunkWords is the staging double-buffer half size: 4096 FP32 words
// = 16 KiB, the same fixed quantum the parallel chunking uses.
const stageChunkWords = 4096

// SchedStats is a scheduled trainer's residency and traffic accounting.
type SchedStats struct {
	// Segments is the schedulable layer count; ResidentWords and
	// CapacityWords describe the fast tier at sampling time.
	Segments      int
	ResidentWords int64
	CapacityWords int64
	// Residency is the hit/miss/eviction accounting.
	Residency staging.ResidencyStats
	// Heat is the per-segment demand-use count (forward + backward).
	Heat []int64
	// TransferredWords counts parameter words routed master->compute
	// through the staging double buffer; BufferSwaps/BufferStalls are the
	// double buffer's counters.
	TransferredWords int64
	BufferSwaps      int64
	BufferStalls     int64
	// GradFlushes / GradWords count gradient-buffer flush batches and
	// words streamed out during backward.
	GradFlushes int64
	GradWords   int64
	// ActWords counts activation words spilled and refetched (the
	// long-context driver; zero for single-block models).
	ActWords int64
}

// OffloadScheduler owns the residency model and staging buffers of one
// trainer. Not safe for concurrent use.
type OffloadScheduler struct {
	segs []Segment
	res  *staging.Residency
	db   *staging.DoubleBuffer
	gb   *staging.GradientBuffer

	// actWordsPer is the per-(example, layer) activation word count for
	// block segments; 0 when the model keeps no per-layer activations.
	actWordsPer map[int]int

	transferred int64
	actWords    int64
	prevGradEl  int64
	steps       int64
}

// schedEnabled reports whether any offload-scheduling knob is set.
func (c Config) schedEnabled() bool {
	return c.SchedCacheWords > 0 || c.SchedPrefetch > 0 || c.SchedPolicy != "" || c.SchedPinned > 0
}

// newScheduler builds the offload scheduler for a model. The segmentation
// must tile the parameter vector exactly.
func newScheduler(model proxyModel, cfg Config, tokensPer int) (*OffloadScheduler, error) {
	var segs []Segment
	if sm, ok := model.(segmented); ok {
		segs = sm.Segments()
	} else {
		segs = []Segment{{Name: "block", Lo: 0, Hi: model.NumParams()}}
	}
	off := 0
	for i, s := range segs {
		if s.Lo != off || s.Hi <= s.Lo {
			return nil, fmt.Errorf("realtrain: segment %d (%s) [%d,%d) does not tile the vector at %d", i, s.Name, s.Lo, s.Hi, off)
		}
		off = s.Hi
	}
	if off != model.NumParams() {
		return nil, fmt.Errorf("realtrain: segments cover %d of %d params", off, model.NumParams())
	}
	policy, err := staging.ParsePolicy(cfg.SchedPolicy)
	if err != nil {
		return nil, err
	}
	sizes := make([]int64, len(segs))
	for i, s := range segs {
		sizes[i] = int64(s.Hi-s.Lo) * 4
	}
	res, err := staging.NewResidency(sizes, int64(cfg.SchedCacheWords)*4, policy, cfg.SchedPinned)
	if err != nil {
		return nil, err
	}
	// Warm start: fill the fast tier with the lowest layers, the working
	// set a preceding backward pass (which ends at layer 0) leaves behind.
	for i := range segs {
		if !res.Warm(i) {
			break
		}
	}
	sc := &OffloadScheduler{
		segs:        segs,
		res:         res,
		db:          staging.NewDoubleBuffer(stageChunkWords),
		actWordsPer: make(map[int]int),
	}
	sc.gb = staging.NewGradientBuffer(stageChunkWords, nil)
	if ls, ok := model.(*LayerStack); ok {
		per := ls.ActivationWordsPerLayer(tokensPer)
		for i, s := range segs {
			if s.Name != "emb" && s.Name != "head" {
				sc.actWordsPer[i] = per
			}
		}
	}
	return sc, nil
}

// Step drives one training step's layer traversal and parameter refresh:
// the residency walk (forward with prefetch, backward with prefetch,
// activation spill accounting), the gradient stream-out, and the
// master->compute segment transfer (merge or copy) through the staging
// double buffer. It is the scheduled replacement for the trainer's
// whole-vector transfer and computes bit-identical compute parameters.
func (s *OffloadScheduler) Step(compute, master, grads []float32, active bool, dirtyBytes, workers, prefetch, batch int) error {
	before := s.res.Stats()

	// Forward traversal: layer k executes while the prefetch window pulls
	// k+1..k+P into the fast tier.
	last := len(s.segs) - 1
	for k := 0; k <= last; k++ {
		s.res.Use(k, k)
		for j := k + 1; j <= k+prefetch && j <= last; j++ {
			s.res.Prefetch(j, k)
		}
		// Activation spill: block layers write their saved activations to
		// the far tier as forward leaves them behind.
		if w := s.actWordsPer[k]; w > 0 {
			s.actWords += int64(w) * int64(batch)
			staging.RecordWriteback(int64(w) * int64(batch) * 4)
		}
	}
	// Backward traversal in reverse, prefetching downward; spilled
	// activations stream back in before each block's backward.
	for k := last; k >= 0; k-- {
		s.res.Use(k, k)
		for j := k - 1; j >= k-prefetch && j >= 0; j-- {
			s.res.Prefetch(j, k)
		}
		if w := s.actWordsPer[k]; w > 0 {
			s.actWords += int64(w) * int64(batch)
		}
		// Gradient stream-out in backward layer order.
		seg := s.segs[k]
		s.gb.Append(grads[seg.Lo:seg.Hi])
	}
	s.gb.FlushRemaining()
	if _, el := s.gb.Stats(); el > s.prevGradEl {
		staging.RecordWriteback((el - s.prevGradEl) * 4)
		s.prevGradEl = el
	}

	// Parameter refresh: each segment's words route through the staging
	// double buffer in chunks; per-chunk merge/copy is element-wise, so
	// the result bit-equals the whole-vector transfer.
	for k, seg := range s.segs {
		s.res.Use(k, k)
		if err := s.stage(compute[seg.Lo:seg.Hi], master[seg.Lo:seg.Hi], active, dirtyBytes, workers); err != nil {
			return err
		}
		s.transferred += int64(seg.Hi - seg.Lo)
	}

	s.steps++
	after := s.res.Stats()
	staging.RecordSchedStep(staging.ResidencyStats{
		Hits:           after.Hits - before.Hits,
		PrefetchHits:   after.PrefetchHits - before.PrefetchHits,
		DemandMisses:   after.DemandMisses - before.DemandMisses,
		PrefetchIssued: after.PrefetchIssued - before.PrefetchIssued,
		LoadedBytes:    after.LoadedBytes - before.LoadedBytes,
	})
	if check.Enabled() {
		check.Check(s.res.CheckInvariants)
	}
	return nil
}

// stage routes src through the double buffer into dst, merging or copying
// chunk by chunk.
func (s *OffloadScheduler) stage(dst, src []float32, active bool, dirtyBytes, workers int) error {
	flushed := 0
	off := 0
	for off < len(src) {
		n := s.db.Fill(src[off:])
		if n == 0 {
			return fmt.Errorf("realtrain: staging buffer accepted no data at %d/%d", off, len(src))
		}
		off += n
		if s.db.Full() || off == len(src) {
			staged, err := s.db.Swap()
			if err != nil {
				return err
			}
			out := dst[flushed : flushed+len(staged)]
			if active {
				dba.MergeWords(out, staged, dirtyBytes, workers)
			} else {
				copy(out, staged)
			}
			flushed += len(staged)
			s.db.Complete()
		}
	}
	return nil
}

// Stats returns the scheduler's accounting so far. Heat is copied.
func (s *OffloadScheduler) Stats() SchedStats {
	swaps, stalls := s.db.Stats()
	flushes, gradEl := s.gb.Stats()
	return SchedStats{
		Segments:         len(s.segs),
		ResidentWords:    s.res.ResidentBytes() / 4,
		CapacityWords:    s.res.Capacity() / 4,
		Residency:        s.res.Stats(),
		Heat:             append([]int64(nil), s.res.Heat()...),
		TransferredWords: s.transferred,
		BufferSwaps:      swaps,
		BufferStalls:     stalls,
		GradFlushes:      flushes,
		GradWords:        gradEl,
		ActWords:         s.actWords,
	}
}

// Segments returns the scheduler's segmentation (aliased; callers must not
// mutate).
func (s *OffloadScheduler) Segments() []Segment { return s.segs }
