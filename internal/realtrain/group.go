package realtrain

import (
	"errors"
	"fmt"
	"math"

	"teco/internal/checkpoint"
	"teco/internal/conformance/check"
	"teco/internal/cxl"
	"teco/internal/fabric"
	"teco/internal/parallel"
	"teco/internal/tensor"
)

// Data-parallel TECO training over the switched fabric.
//
// A Group wraps one Trainer (the host: master copy, ADAM, DBA merge,
// checkpointing — all of PR 2's machinery unchanged) and R replica
// accelerators, each holding its own copy of the compute parameters behind
// its own fabric port. Every step:
//
//  1. Broadcast: the host shards the parameter payload (the low dirty
//     bytes per word when DBA is active, full words otherwise) across the
//     live replicas and all-gathers the shards replica-to-replica, so each
//     replica's local copy bit-equals the trainer's compute copy.
//  2. Shard: the global batch splits contiguously across live replicas;
//     each computes per-sample gradient tapes (samplegrad.go) against its
//     local copy.
//  3. Merge: tapes cross the fabric as CRC-framed messages in replica-id
//     order and the host replays them in global batch order — bit-identical
//     to the single trainer's LossAndGrad at ANY replica count, which is
//     the house equality every fabric proof rests on.
//
// Robustness: a dead port is detected on first use; delivery fails over to
// a spare port when one exists, otherwise the replica is declared lost,
// its shard is redistributed to survivors (who recompute the identical
// tapes), and the run continues degraded. A revived replica rebuilds its
// local copy from the host's checkpointed state.
type GroupConfig struct {
	// Train is the underlying trainer configuration. Arch must be the
	// default MLP: the data-parallel tape pipeline mirrors its backward
	// pass expression-for-expression.
	Train Config
	// Replicas is the data-parallel width (>= 1). The trainer's Batch
	// must be >= Replicas so every replica owns at least one sample.
	Replicas int
	// SparePorts adds idle fabric ports that failover can reroute onto.
	SparePorts int
	// Faults is the per-port functional fault template (bit errors on
	// real frame bytes; see fabric.NetConfig).
	Faults cxl.FaultConfig
	// FrameRetryBudget bounds per-frame CRC retransmits (0: cxl default).
	FrameRetryBudget int
	// KillPort, when 1..Replicas, kills that port (1-based) at the start
	// of fine-tuning step KillAtStep, after the parameter broadcast and
	// before the replica's shard can land — the mid-step loss case.
	KillPort   int
	KillAtStep int
}

// GroupStats counts fabric and degraded-mode events over the run.
type GroupStats struct {
	Steps           int64
	BroadcastFrames int64
	GradFrames      int64
	FrameRetries    int64
	FramesPoisoned  int64
	Failovers       int64
	DegradedSteps   int64
	LostReplicas    int64
	Redistributed   int64
	Rebuilds        int64
}

type replica struct {
	id    int
	model *MLP
	local []float32
	fp16  []float32
	alive bool
	// staged holds the tapes computed for this replica's shard this step.
	staged []*sampleTape
}

// Group is the data-parallel fabric trainer.
type Group struct {
	cfg      GroupConfig
	tr       *Trainer
	m        *MLP
	net      *fabric.Net
	replicas []*replica
	// tapes are the host-side decoded tapes, indexed by batch position.
	tapes []*sampleTape
	enc   []byte
	stats GroupStats
	armed bool
}

// NewGroup builds a replica group (running the trainer's pre-training
// phase, exactly as NewTrainer does).
func NewGroup(cfg GroupConfig) (*Group, error) {
	tr, err := NewTrainer(cfg.Train)
	if err != nil {
		return nil, err
	}
	return newGroup(cfg, tr)
}

// NewGroupFromSnapshot rebuilds a group from a PR 2 checkpoint snapshot:
// the trainer restores bit-exactly and every replica's local copy is
// rebuilt from the restored compute state.
func NewGroupFromSnapshot(cfg GroupConfig, snap *checkpoint.Snapshot) (*Group, error) {
	tr, err := NewTrainerFromSnapshot(cfg.Train, snap)
	if err != nil {
		return nil, err
	}
	return newGroup(cfg, tr)
}

func newGroup(cfg GroupConfig, tr *Trainer) (*Group, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("realtrain: group needs >= 1 replica, got %d", cfg.Replicas)
	}
	if cfg.Replicas > int(fabric.HostAddr) {
		return nil, fmt.Errorf("realtrain: %d replicas exceed the fabric address space", cfg.Replicas)
	}
	if tr.cfg.Batch < cfg.Replicas {
		return nil, fmt.Errorf("realtrain: batch %d smaller than %d replicas", tr.cfg.Batch, cfg.Replicas)
	}
	if cfg.KillPort < 0 || cfg.KillPort > cfg.Replicas {
		return nil, fmt.Errorf("realtrain: kill port %d outside 1..%d", cfg.KillPort, cfg.Replicas)
	}
	m, ok := tr.model.(*MLP)
	if !ok {
		return nil, fmt.Errorf("realtrain: fabric data-parallel mode supports arch \"mlp\" only, got %q", tr.cfg.Arch)
	}
	net, err := fabric.NewNet(fabric.NetConfig{
		Ports:       cfg.Replicas,
		SparePorts:  cfg.SparePorts,
		Faults:      cfg.Faults,
		RetryBudget: cfg.FrameRetryBudget,
	})
	if err != nil {
		return nil, err
	}
	g := &Group{cfg: cfg, tr: tr, m: m, net: net, armed: cfg.KillPort > 0}
	for r := 0; r < cfg.Replicas; r++ {
		rep := &replica{
			id:    r,
			model: &MLP{Vocab: m.Vocab, Dim: m.Dim, Hidden: m.Hidden, Classes: m.Classes},
			local: make([]float32, len(tr.compute)),
			alive: true,
		}
		copy(rep.local, tr.compute)
		if tr.cfg.FP16Compute {
			rep.fp16 = make([]float32, len(tr.compute))
		}
		g.replicas = append(g.replicas, rep)
	}
	g.tapes = make([]*sampleTape, tr.cfg.Batch)
	for i := range g.tapes {
		g.tapes[i] = newSampleTape(m)
	}
	tr.gradFn = g.gradFn
	return g, nil
}

// Trainer exposes the wrapped host trainer (checkpointing, results).
func (g *Group) Trainer() *Trainer { return g.tr }

// Stats returns the group's fabric/degraded-mode accounting so far.
func (g *Group) Stats() GroupStats { return g.stats }

// NetStats returns the functional fabric plane's frame accounting.
func (g *Group) NetStats() fabric.NetStats { return g.net.Stats() }

// LiveReplicas returns the ids of replicas still in the group.
func (g *Group) LiveReplicas() []int {
	var ids []int
	for _, rep := range g.replicas {
		if rep.alive {
			ids = append(ids, rep.id)
		}
	}
	return ids
}

// Step runs one fine-tuning step through the fabric pipeline.
func (g *Group) Step() error { return g.tr.Step() }

// Done reports whether the configured steps have completed.
func (g *Group) Done() bool { return g.tr.Done() }

// Run drives the group to completion and returns the trainer's result.
func (g *Group) Run() (Result, error) {
	for !g.tr.Done() {
		if err := g.tr.Step(); err != nil {
			return Result{}, err
		}
	}
	return g.tr.Result(), nil
}

// KillReplica takes down replica r's fabric port (0-based; the chaos
// harness and tests drive this directly, GroupConfig.KillPort schedules
// it).
func (g *Group) KillReplica(r int) error { return g.net.KillPort(r) }

// ReviveReplica brings a lost replica back: its port rejoins the fabric
// and its local parameter copy is rebuilt from the host's checkpointed
// compute state (bit-equal to rebuilding from any surviving replica — the
// broadcast invariant keeps all copies identical).
func (g *Group) ReviveReplica(r int) error {
	if r < 0 || r >= len(g.replicas) {
		return fmt.Errorf("realtrain: revive of unknown replica %d", r)
	}
	if err := g.net.RevivePort(r); err != nil {
		return err
	}
	rep := g.replicas[r]
	if !rep.alive {
		rep.alive = true
		copy(rep.local, g.tr.compute)
		g.stats.Rebuilds++
		fabric.RecordRebuild()
	}
	return nil
}

// lose marks replica r lost after failover was exhausted.
func (g *Group) lose(r int) {
	rep := g.replicas[r]
	if !rep.alive {
		return
	}
	rep.alive = false
	g.stats.LostReplicas++
	fabric.RecordLostReplica()
}

func (g *Group) liveList() []*replica {
	var live []*replica
	for _, rep := range g.replicas {
		if rep.alive {
			live = append(live, rep)
		}
	}
	return live
}

// gradFn is the trainer hook: the full fabric pipeline for one step.
func (g *Group) gradFn(fwdParams []float32, batch []int, grads []float32) (float64, error) {
	step := g.tr.step
	g.stats.Steps++

	// (1) Parameter broadcast: sync every live replica's local copy with
	// the host state. A port death discovered here loses that replica and
	// the broadcast restarts over the survivors (shard application is
	// idempotent, so replicas that already applied shards stay correct).
	for {
		err := g.broadcast(step)
		if err == nil {
			break
		}
		var pde *fabric.PortDownError
		if errors.As(err, &pde) {
			g.lose(pde.Port)
			if len(g.liveList()) == 0 {
				return 0, fmt.Errorf("realtrain: all replicas lost at step %d", step)
			}
			continue
		}
		return 0, err
	}

	// Scheduled chaos: the port dies after the broadcast, before this
	// step's gradient tapes can land — the mid-step loss case.
	if g.armed && step >= g.cfg.KillAtStep {
		g.armed = false
		if err := g.net.KillPort(g.cfg.KillPort - 1); err != nil {
			return 0, err
		}
	}

	// (2) Shard the batch contiguously over live replicas and compute the
	// per-sample tapes in parallel (each replica owns its model scratch
	// and tape buffers; tapes are pure functions of shipped bits, so the
	// result is identical at any worker count).
	live := g.liveList()
	shards := shardBatch(len(batch), len(live))
	inv := float32(1.0 / float64(len(batch)))
	fns := make([]func(), len(live))
	for i, rep := range live {
		i, rep := i, rep
		fns[i] = func() { g.stageShard(rep, batch, shards[i], inv) }
	}
	parallel.Do(g.tr.cfg.Workers, fns...)

	if check.Enabled() {
		check.Check(func() error { return g.checkSync() })
	}

	// (3) Deliver every staged tape host-ward in replica-id order. A dead
	// port loses its replica; the undelivered shard is redistributed.
	var pending []int // batch positions needing recomputation
	degraded := false
	for _, rep := range live {
		for ti, tp := range rep.staged {
			if err := g.deliverTape(rep, step, tp); err != nil {
				var pde *fabric.PortDownError
				if !errors.As(err, &pde) {
					return 0, err
				}
				g.lose(rep.id)
				degraded = true
				for _, later := range rep.staged[ti:] {
					pending = append(pending, later.pos)
				}
				break
			}
		}
	}
	if degraded {
		g.stats.DegradedSteps++
		fabric.RecordDegradedStep()
	}
	if len(pending) > 0 {
		survivors := g.liveList()
		if len(survivors) == 0 {
			return 0, fmt.Errorf("realtrain: all replicas lost at step %d", step)
		}
		g.stats.Redistributed += int64(len(pending))
		fabric.RecordRedistributed(len(pending))
		// Survivors recompute the lost shard (same shipped bits -> same
		// tapes) and deliver through their own ports, round-robin.
		for i, pos := range pending {
			rep := survivors[i%len(survivors)]
			tp := rep.stage(g.m)
			rep.model.tapeSample(g.replicaFwd(rep), g.tr.ds, batch[pos], pos, inv, tp)
			if err := g.deliverTape(rep, step, tp); err != nil {
				return 0, err
			}
		}
	}

	// (4) Replay on the host in global batch order: bit-identical to the
	// single trainer's LossAndGrad.
	for i := range grads {
		grads[i] = 0
	}
	var loss float64
	for pos := range batch {
		tp := g.tapes[pos]
		if tp.pos != pos {
			return 0, fmt.Errorf("realtrain: tape for position %d carries position %d", pos, tp.pos)
		}
		g.m.replayTape(grads, g.tr.ds, tp)
		loss += tp.loss
	}
	return loss / float64(len(batch)), nil
}

// stage grows the replica's staged-tape pool by one (redistribution can
// enlarge a shard mid-run) and returns the fresh buffer.
func (rep *replica) stage(m *MLP) *sampleTape {
	tp := newSampleTape(m)
	rep.staged = append(rep.staged, tp)
	return tp
}

// stageShard computes the tapes for one replica's shard.
func (g *Group) stageShard(rep *replica, batch []int, sh shard, inv float32) {
	for len(rep.staged) < sh.n {
		rep.staged = append(rep.staged, newSampleTape(g.m))
	}
	rep.staged = rep.staged[:sh.n]
	fwd := g.replicaFwd(rep)
	for i := 0; i < sh.n; i++ {
		pos := sh.lo + i
		rep.model.tapeSample(fwd, g.tr.ds, batch[pos], pos, inv, rep.staged[i])
	}
}

// replicaFwd returns the parameter view the replica's forward pass uses:
// its local copy, rounded through FP16 when mixed precision is on (the
// same element-wise rounding the single trainer applies).
func (g *Group) replicaFwd(rep *replica) []float32 {
	if !g.tr.cfg.FP16Compute {
		return rep.local
	}
	for i, v := range rep.local {
		rep.fp16[i] = tensor.RoundTripFP16(v)
	}
	return rep.fp16
}

// deliverTape frames one tape, carries it across the fabric and decodes it
// into the host-side slot for its batch position.
func (g *Group) deliverTape(rep *replica, step int, tp *sampleTape) error {
	g.enc = tp.appendEncode(g.enc[:0])
	f := fabric.Frame{
		Src:     uint8(rep.id),
		Dst:     fabric.HostAddr,
		Kind:    fabric.KindGrad,
		Flow:    uint32(step),
		Seq:     uint32(tp.pos),
		Payload: g.enc,
	}
	res, err := g.net.Deliver(&f)
	if err != nil {
		return err
	}
	g.noteDelivery(res)
	g.stats.GradFrames++
	host := g.tapes[tp.pos]
	if err := host.decode(res.Frame.Payload, g.m); err != nil {
		return err
	}
	if host.pos != tp.pos {
		return fmt.Errorf("realtrain: tape position %d decoded as %d", tp.pos, host.pos)
	}
	return nil
}

func (g *Group) noteDelivery(res fabric.DeliverResult) {
	g.stats.FrameRetries += int64(res.Retries)
	if res.Poisoned {
		g.stats.FramesPoisoned++
	}
}

// shard is one replica's contiguous slice of the global batch.
type shard struct{ lo, n int }

// shardBatch splits b samples contiguously over r replicas, remainder to
// the lowest-indexed ones.
func shardBatch(b, r int) []shard {
	base, rem := b/r, b%r
	out := make([]shard, r)
	lo := 0
	for i := range out {
		n := base
		if i < rem {
			n++
		}
		out[i] = shard{lo: lo, n: n}
		lo += n
	}
	return out
}

// broadcast pushes the host parameter payload to every live replica:
// the payload is sharded over the live replicas (host -> shard owner) and
// all-gathered replica-to-replica, so every copy converges to the
// trainer's compute state. The payload is the low dirty bytes per word
// while a DBA merge is active, full words otherwise — exactly the bytes
// the trainer's own merge moved.
func (g *Group) broadcast(step int) error {
	live := g.liveList()
	if len(live) == 0 {
		return &fabric.PortDownError{Port: 0}
	}
	dirty := 4
	if g.tr.cfg.DBA && g.tr.ctrl.ActivatedAt() >= 0 {
		dirty = g.tr.cfg.DirtyBytes
	}
	words := len(g.tr.master)
	shards := shardBatch(words, len(live))
	for si, owner := range live {
		sh := shards[si]
		payload := extractPayload(g.tr.master, sh.lo, sh.n, dirty)
		// Host -> shard owner.
		f := fabric.Frame{
			Src: fabric.HostAddr, Dst: uint8(owner.id),
			Kind: fabric.KindParam, Flow: uint32(step), Seq: uint32(si),
			Payload: payload,
		}
		res, err := g.net.Deliver(&f)
		if err != nil {
			return err
		}
		g.noteDelivery(res)
		g.stats.BroadcastFrames++
		applyShard(owner.local, res.Frame.Payload, sh.lo, dirty)
		// All-gather leg: owner forwards its shard to every other live
		// replica.
		for _, peer := range live {
			if peer.id == owner.id {
				continue
			}
			pf := fabric.Frame{
				Src: uint8(owner.id), Dst: uint8(peer.id),
				Kind: fabric.KindParam, Flow: uint32(step), Seq: uint32(si),
				Payload: payload,
			}
			pres, err := g.net.Deliver(&pf)
			if err != nil {
				return err
			}
			g.noteDelivery(pres)
			g.stats.BroadcastFrames++
			applyShard(peer.local, pres.Frame.Payload, sh.lo, dirty)
		}
	}
	return nil
}

// checkSync asserts the broadcast invariant: every live replica's local
// copy bit-equals the trainer's compute copy.
func (g *Group) checkSync() error {
	for _, rep := range g.replicas {
		if !rep.alive {
			continue
		}
		for i, v := range rep.local {
			if math.Float32bits(v) != math.Float32bits(g.tr.compute[i]) {
				return fmt.Errorf("realtrain: replica %d word %d diverged from compute copy", rep.id, i)
			}
		}
	}
	return nil
}

// extractPayload serializes words [lo, lo+n)'s low `dirty` bytes (dirty=4:
// whole words), little-endian — the master-side half of the DBA merge.
func extractPayload(params []float32, lo, n, dirty int) []byte {
	out := make([]byte, 0, n*dirty)
	for i := lo; i < lo+n; i++ {
		bits := math.Float32bits(params[i])
		for b := 0; b < dirty; b++ {
			out = append(out, byte(bits>>(8*b)))
		}
	}
	return out
}

// applyShard merges a payload into local words [lo, lo+n): the low dirty
// bytes come from the payload, the high bytes stay — the same bit
// operation as dba.MergeWords, so the replica-side merge bit-equals the
// trainer's.
func applyShard(local []float32, payload []byte, lo, dirty int) {
	n := len(payload) / dirty
	mask := uint32(1)<<(uint(dirty)*8) - 1
	if dirty == 4 {
		mask = ^uint32(0)
	}
	for i := 0; i < n; i++ {
		var mb uint32
		for b := 0; b < dirty; b++ {
			mb |= uint32(payload[i*dirty+b]) << (8 * b)
		}
		cb := math.Float32bits(local[lo+i])
		local[lo+i] = math.Float32frombits((cb &^ mask) | (mb & mask))
	}
}
