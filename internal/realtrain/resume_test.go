package realtrain

import (
	"errors"
	"math"
	"testing"

	"teco/internal/checkpoint"
)

// fastCfg keeps resume tests quick: short pre-training, short run, DBA on
// so the snapshot carries real staleness and controller state.
func fastCfg(seed int64) Config {
	return Config{Steps: 60, PreSteps: 40, Seed: seed, DBA: true, ActAfterSteps: 20, SampleEvery: 5}
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func runTo(t *testing.T, tr *Trainer, step int) {
	t.Helper()
	for tr.StepCount() < step {
		if err := tr.Step(); err != nil {
			t.Fatalf("step %d: %v", tr.StepCount(), err)
		}
	}
}

// The acceptance criterion at trainer level: a run snapshotted at an
// arbitrary step and restored into a fresh trainer finishes with
// bit-identical parameters, ADAM moments, compute copy, and loss
// trajectory.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	for _, at := range []int{1, 17, 35, 59} {
		cfg := fastCfg(5)
		ref, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runTo(t, ref, at)
		snap := ref.Snapshot()
		runTo(t, ref, cfg.Steps)

		res, err := NewTrainerFromSnapshot(cfg, snap)
		if err != nil {
			t.Fatal(err)
		}
		runTo(t, res, cfg.Steps)

		if !bitsEqual(ref.MasterParams(), res.MasterParams()) {
			t.Fatalf("snapshot at %d: master params diverged", at)
		}
		if !bitsEqual(ref.ComputeParams(), res.ComputeParams()) {
			t.Fatalf("snapshot at %d: compute copy diverged", at)
		}
		rm, rv := ref.Moments()
		sm, sv := res.Moments()
		if !bitsEqual(rm, sm) || !bitsEqual(rv, sv) {
			t.Fatalf("snapshot at %d: ADAM moments diverged", at)
		}
		a, b := ref.Result(), res.Result()
		if len(a.Samples) != len(b.Samples) {
			t.Fatalf("snapshot at %d: %d vs %d samples", at, len(a.Samples), len(b.Samples))
		}
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				t.Fatalf("snapshot at %d: sample %d diverged: %+v vs %+v", at, i, a.Samples[i], b.Samples[i])
			}
		}
		if a.FinalLoss != b.FinalLoss || a.FinalAcc != b.FinalAcc || a.DivergedWords != b.DivergedWords {
			t.Fatalf("snapshot at %d: final metrics diverged", at)
		}
	}
}

// Snapshot round trip through the wire format must also be bit-exact.
func TestSnapshotWireRoundTripResume(t *testing.T) {
	cfg := fastCfg(9)
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runTo(t, tr, 30)
	snap := tr.Snapshot()
	wire := snap.Encode()
	runTo(t, tr, cfg.Steps)

	decoded, err := checkpoint.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewTrainerFromSnapshot(cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}
	runTo(t, res, cfg.Steps)
	if !bitsEqual(tr.MasterParams(), res.MasterParams()) {
		t.Fatal("wire round trip diverged")
	}
}

func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	cfg := fastCfg(3)
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runTo(t, tr, 5)
	snap := tr.Snapshot()

	other := cfg
	other.FineLR = 5e-5
	if _, err := NewTrainerFromSnapshot(other, snap); err == nil {
		t.Fatal("restore into different hyperparameters accepted")
	}
	bad := *snap
	bad.Params = snap.Params[:10]
	goodTag := bad.ConfigTag
	bad.ConfigTag = goodTag
	if _, err := NewTrainerFromSnapshot(cfg, &bad); err == nil {
		t.Fatal("restore of truncated tensor accepted")
	}
}

// SDC guards: corrupting any resident tensor between steps is detected at
// the next step boundary; a NaN planted in a moment vector is caught by
// the post-ADAM scan before it can spread further than one step.
func TestSDCGuardsDetectCorruption(t *testing.T) {
	for _, tensorName := range []string{"master", "compute", "adam.m", "adam.v"} {
		cfg := fastCfg(21)
		cfg.SDCChecks = true
		tr, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runTo(t, tr, 10)
		if err := tr.CorruptWord(tensorName, 3, 1<<30); err != nil {
			t.Fatal(err)
		}
		err = tr.Step()
		if !IsCorruption(err) {
			t.Fatalf("corrupting %s: Step() = %v, want CorruptionError", tensorName, err)
		}
	}
}

func TestNaNScanCatchesPoisonedMoment(t *testing.T) {
	cfg := fastCfg(23)
	cfg.SDCChecks = true
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runTo(t, tr, 10)
	// Plant an exact quiet NaN in the second moment; the next ADAM step
	// propagates it into the parameter, where the post-step scan must
	// catch it. Recompute checksums as if the corruption slipped past the
	// CRC guard (e.g. it happened inside the optimizer's own write).
	_, v := tr.Moments()
	mask := math.Float32bits(v[7]) ^ 0x7FC00000
	if err := tr.CorruptWord("adam.v", 7, mask); err != nil {
		t.Fatal(err)
	}
	tr.recordSums() // simulate corruption within a legitimate write window
	err = tr.Step()
	if !IsCorruption(err) {
		t.Fatalf("Step() = %v, want CorruptionError from the NaN scan", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) || !ce.NonFinite {
		t.Fatalf("detection %+v should be the non-finite scan", ce)
	}
}

func TestGuardedRunBitIdenticalToUnguarded(t *testing.T) {
	// The guards are read-only: enabling them must not change a single bit
	// of the training numerics.
	a := Run(Config{Steps: 40, PreSteps: 30, Seed: 31, DBA: true, ActAfterSteps: 10})
	b := Run(Config{Steps: 40, PreSteps: 30, Seed: 31, DBA: true, ActAfterSteps: 10, SDCChecks: true})
	if a.FinalLoss != b.FinalLoss || a.FinalAcc != b.FinalAcc {
		t.Fatal("SDC guards changed the numerics")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d diverged under guards", i)
		}
	}
}

func TestStepPastEndErrors(t *testing.T) {
	cfg := Config{Steps: 3, PreSteps: 5, Seed: 1}
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runTo(t, tr, 3)
	if err := tr.Step(); err == nil {
		t.Fatal("stepping past the configured run length must error")
	}
}
