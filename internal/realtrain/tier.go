package realtrain

import (
	"fmt"

	"teco/internal/conformance/check"
	"teco/internal/tiering"
)

// Functional half of the heterogeneous-memory tiering controller: the
// trainer replays each step's tier accesses against a tiering.Controller
// (the same implementation core.RunTiered prices on the timed links) as
// pure bookkeeping beside the numeric step. Each model segment contributes
// two slots — slot 2k holds segment k's parameters (4 bytes/word, touched
// by forward, backward and the update pass) and slot 2k+1 its ADAM
// optimizer state (m+v moments, 8 bytes/word, touched only by the update) —
// the heat-density skew the placement policies exploit.

// tierEnabled reports whether any tiering knob is set.
func (c Config) tierEnabled() bool {
	return c.TierDRAMPct > 0 || c.TierPolicy != "" || c.TierMigrateWords > 0
}

// newTierController builds the trainer's placement controller over the
// model's segments.
func newTierController(model proxyModel, cfg Config) (*tiering.Controller, error) {
	if cfg.TierDRAMPct < 0 || cfg.TierDRAMPct > 100 {
		return nil, fmt.Errorf("realtrain: tier DRAM pct %d outside 0..100", cfg.TierDRAMPct)
	}
	if cfg.TierMigrateWords < 0 {
		return nil, fmt.Errorf("realtrain: negative tier migration budget %d", cfg.TierMigrateWords)
	}
	policy, err := tiering.ParsePolicy(cfg.TierPolicy)
	if err != nil {
		return nil, err
	}
	var segs []Segment
	if sm, ok := model.(segmented); ok {
		segs = sm.Segments()
	} else {
		segs = []Segment{{Name: "block", Lo: 0, Hi: model.NumParams()}}
	}
	sizes := make([]int64, 0, 2*len(segs))
	var total int64
	for _, s := range segs {
		words := int64(s.Hi - s.Lo)
		sizes = append(sizes, words*4, words*8)
		total += words * 12
	}
	capacity := total
	if cfg.TierDRAMPct > 0 {
		capacity = total * int64(cfg.TierDRAMPct) / 100
	}
	return tiering.New(tiering.Config{
		Sizes:       sizes,
		FastBytes:   capacity,
		Policy:      policy,
		BudgetBytes: int64(cfg.TierMigrateWords) * 4,
	})
}

// tierWalk replays one completed step's tier accesses (forward, backward,
// update pass) and plans this step's migrations. -1 for the executing slot:
// migrations are planned between steps, when no layer is on the compute
// unit.
func (t *Trainer) tierWalk() {
	n := t.tier.Slots() / 2
	for k := 0; k < n; k++ {
		t.tier.Touch(2 * k)
	}
	for k := n - 1; k >= 0; k-- {
		t.tier.Touch(2 * k)
	}
	for k := 0; k < n; k++ {
		t.tier.Touch(2 * k)
		t.tier.Touch(2*k + 1)
	}
	t.tier.PlanStep(-1)
	if check.Enabled() {
		check.Check(t.tier.CheckInvariants)
	}
}

// TierStats returns the tiering controller's placement/migration accounting
// and whether a controller is active. Like SchedStats, the counters live
// outside Result and the checkpoint format: they describe placement, not
// the trained model, so crash/restore equality is unaffected by them.
func (t *Trainer) TierStats() (tiering.Stats, bool) {
	if t.tier == nil {
		return tiering.Stats{}, false
	}
	return t.tier.Stats(), true
}
