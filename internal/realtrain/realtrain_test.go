package realtrain

import (
	"math"
	"math/rand"
	"testing"

	"teco/internal/tensor"
)

func TestDatasetDeterministic(t *testing.T) {
	a := NewDataset(DatasetConfig{Seed: 7})
	b := NewDataset(DatasetConfig{Seed: 7})
	if a.TrainY[0] != b.TrainY[0] || a.TrainTok[5][3] != b.TrainTok[5][3] {
		t.Fatal("dataset not deterministic")
	}
	c := NewDataset(DatasetConfig{Seed: 8})
	same := true
	for i := range a.TrainY[:100] {
		if a.TrainY[i] != c.TrainY[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical labels")
	}
}

func TestDatasetShapes(t *testing.T) {
	d := NewDataset(DatasetConfig{Vocab: 64, TokensPer: 4, Dim: 16, Classes: 4, Train: 100, Test: 50, Seed: 1})
	if len(d.TrainTok) != 100 || len(d.TestTok) != 50 {
		t.Fatal("sizes")
	}
	if len(d.TrainTok[0]) != 4 {
		t.Fatal("tokens per example")
	}
	for _, tok := range d.TrainTok {
		for _, v := range tok {
			if v < 0 || v >= 64 {
				t.Fatalf("token %d out of range", v)
			}
		}
	}
	for _, y := range d.TrainY {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestMLPForwardIsDistribution(t *testing.T) {
	m := NewMLP(32, 8, 16, 4, 1)
	p := m.Forward(m.Params, []int{1, 5, 9})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("prob %v out of range", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("probs sum to %v", sum)
	}
}

// TestGradientsMatchFiniteDifferences validates the hand-written backprop.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	ds := NewDataset(DatasetConfig{Vocab: 32, TokensPer: 4, Dim: 6, Classes: 3, Train: 20, Test: 5, Seed: 3})
	m := NewMLP(32, 6, 10, 3, 4)
	batch := []int{0, 1, 2, 3}
	grads := make([]float32, m.NumParams())
	m.LossAndGrad(m.Params, ds, batch, grads)

	rng := rand.New(rand.NewSource(9))
	const eps = 1e-3
	checked := 0
	for trial := 0; trial < 30; trial++ {
		i := rng.Intn(m.NumParams())
		orig := m.Params[i]
		m.Params[i] = orig + eps
		lp := m.LossAndGrad(m.Params, ds, batch, make([]float32, m.NumParams()))
		m.Params[i] = orig - eps
		lm := m.LossAndGrad(m.Params, ds, batch, make([]float32, m.NumParams()))
		m.Params[i] = orig
		fd := (lp - lm) / (2 * eps)
		// FP32 forward noise (~1e-7 in the loss) makes FD unreliable for
		// gradients below ~1e-3/eps; skip those.
		if math.Abs(fd) < 1e-3 || math.Abs(float64(grads[i])) < 1e-3 {
			continue
		}
		rel := math.Abs(fd-float64(grads[i])) / math.Max(math.Abs(fd), math.Abs(float64(grads[i])))
		if rel > 0.05 {
			t.Fatalf("param %d: analytic %v vs FD %v (rel %.3f)", i, grads[i], fd, rel)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

func TestTrainingLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	r := Run(Config{Steps: 200, Seed: 11})
	if r.FinalAcc < 0.5 {
		t.Fatalf("final accuracy %.2f — model did not learn", r.FinalAcc)
	}
	if r.Perplexity != math.Exp(r.FinalLoss) {
		t.Fatal("perplexity definition")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Config{Steps: 50, Seed: 5, PreSteps: 50})
	b := Run(Config{Steps: 50, Seed: 5, PreSteps: 50})
	if a.FinalLoss != b.FinalLoss || a.FinalAcc != b.FinalAcc {
		t.Fatal("runs with same seed must be identical")
	}
}

// TestDBAPreservesConvergence is Table V / Fig 10: fine-tuning with DBA
// reaches accuracy close to the exact run, and the loss curves follow the
// same trend.
func TestDBAPreservesConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	base := Run(Config{Steps: 600, Seed: 21})
	red := Run(Config{Steps: 600, Seed: 21, DBA: true, ActAfterSteps: 200})
	if red.ActivatedAt != 200 {
		t.Fatalf("DBA activated at %d", red.ActivatedAt)
	}
	if diff := base.FinalAcc - red.FinalAcc; diff > 0.08 {
		t.Fatalf("DBA cost %.3f accuracy (base %.3f, dba %.3f)", diff, base.FinalAcc, red.FinalAcc)
	}
	// Loss trends comparable: final sampled losses within a band.
	_, lb := base.LossCurve()
	_, lr := red.LossCurve()
	if math.Abs(lb[len(lb)-1]-lr[len(lr)-1]) > 0.5 {
		t.Fatalf("loss curves diverged: %.3f vs %.3f", lb[len(lb)-1], lr[len(lr)-1])
	}
}

// TestFig2Shape: among changed parameters in the fine-tuning regime, the
// overwhelming majority change only their low two bytes, while gradients
// change across all bytes (paper Observation 2).
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	r := Run(Config{Steps: 300, Seed: 31})
	params, grads := r.AggregateDistributions()
	lowTwo := params.FracOfChanged(tensor.LastByte) + params.FracOfChanged(tensor.LastTwoBytes)
	if lowTwo < 0.6 {
		t.Fatalf("param low-two-byte fraction = %.2f, want the majority", lowTwo)
	}
	gOther := grads.FracOfChanged(tensor.Other)
	if gOther < 0.5 {
		t.Fatalf("gradient 'other' fraction = %.2f; gradients should churn all bytes", gOther)
	}
	if params.FracUnchanged() <= 0 {
		t.Fatal("some parameters should be unchanged between steps")
	}
}

// TestImmediateDBAHurtsMore: Fig 13 — activating DBA from step 0 costs
// more accuracy than activating late, because early training still moves
// parameter exponents.
func TestImmediateDBAHurtsMore(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	late := Run(Config{Steps: 600, Seed: 41, DBA: true, ActAfterSteps: 400})
	early := Run(Config{Steps: 600, Seed: 41, DBA: true, ActAfterSteps: 0})
	if early.DivergedWords < late.DivergedWords {
		t.Fatalf("early activation should accumulate at least as much divergence (%d vs %d)",
			early.DivergedWords, late.DivergedWords)
	}
}

func TestMergeDirtyBytes(t *testing.T) {
	compute := []float32{math.Float32frombits(0xAABBCCDD)}
	master := []float32{math.Float32frombits(0x11223344)}
	mergeDirtyBytes(compute, master, 2)
	if got := math.Float32bits(compute[0]); got != 0xAABB3344 {
		t.Fatalf("merge = %08x", got)
	}
	mergeDirtyBytes(compute, master, 4)
	if math.Float32bits(compute[0]) != 0x11223344 {
		t.Fatal("n=4 must copy fully")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mergeDirtyBytes(compute, master, 5)
}

func TestMergeMatchesDBADisaggregate(t *testing.T) {
	// The trainer's word-level merge must agree with the hardware
	// Disaggregator's line-level merge.
	rng := rand.New(rand.NewSource(55))
	compute := make([]float32, 16)
	master := make([]float32, 16)
	for i := range compute {
		compute[i] = math.Float32frombits(rng.Uint32())
		master[i] = math.Float32frombits(rng.Uint32())
	}
	oldT := tensor.FromSlice("old", append([]float32(nil), compute...))
	newT := tensor.FromSlice("new", append([]float32(nil), master...))
	mergeDirtyBytes(compute, master, 2)

	// Hardware path: EncodeLine -> Aggregate -> Disaggregate.
	oldLine := oldT.EncodeLine(0)
	newLine := newT.EncodeLine(0)
	merged := tensor.New("m", 16)
	mergedLine := make([]byte, 64)
	copy(mergedLine, oldLine)
	payload := make([]byte, 0, 32)
	for w := 0; w < 16; w++ {
		payload = append(payload, newLine[w*4], newLine[w*4+1])
	}
	for w := 0; w < 16; w++ {
		mergedLine[w*4] = payload[w*2]
		mergedLine[w*4+1] = payload[w*2+1]
	}
	merged.DecodeLine(0, mergedLine)
	for i := 0; i < 16; i++ {
		if math.Float32bits(merged.At(i)) != math.Float32bits(compute[i]) {
			t.Fatalf("word %d: hardware %08x vs trainer %08x", i,
				math.Float32bits(merged.At(i)), math.Float32bits(compute[i]))
		}
	}
}

// TestFP16ComputeComposesWithDBA: mixed-precision training (paper §V) —
// the GPU-side FP32->FP16 conversion does not defeat DBA, because the
// CPU->GPU transfer stays FP32.
func TestFP16ComputeComposesWithDBA(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	fp16 := Run(Config{Steps: 400, Seed: 61, FP16Compute: true})
	both := Run(Config{Steps: 400, Seed: 61, FP16Compute: true, DBA: true, ActAfterSteps: 100})
	if fp16.FinalAcc < 0.35 {
		t.Fatalf("fp16 training collapsed: acc %.3f", fp16.FinalAcc)
	}
	if diff := fp16.FinalAcc - both.FinalAcc; diff > 0.10 {
		t.Fatalf("DBA on top of fp16 cost %.3f accuracy", diff)
	}
}

// TestFP16AloneCloseToFP32: the mixed-precision rounding itself is benign.
func TestFP16AloneCloseToFP32(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	fp32 := Run(Config{Steps: 300, Seed: 71})
	fp16 := Run(Config{Steps: 300, Seed: 71, FP16Compute: true})
	if diff := fp32.FinalAcc - fp16.FinalAcc; diff > 0.10 || diff < -0.10 {
		t.Fatalf("fp16 accuracy gap %.3f too large (%.3f vs %.3f)", diff, fp32.FinalAcc, fp16.FinalAcc)
	}
}

// TestTrajectoriesIdenticalBeforeActivation: until act_aft_steps, the DBA
// run transfers full parameters, so its sampled losses must be bit-identical
// to the exact run's.
func TestTrajectoriesIdenticalBeforeActivation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long training run in -short mode")
	}
	const act = 200
	base := Run(Config{Steps: 300, Seed: 81})
	red := Run(Config{Steps: 300, Seed: 81, DBA: true, ActAfterSteps: act})
	for i := range base.Samples {
		if base.Samples[i].Step >= act {
			break
		}
		if base.Samples[i].Loss != red.Samples[i].Loss {
			t.Fatalf("step %d: losses diverged before activation (%v vs %v)",
				base.Samples[i].Step, base.Samples[i].Loss, red.Samples[i].Loss)
		}
		if red.Samples[i].DBAActive {
			t.Fatalf("DBA active at step %d, before act_aft_steps", base.Samples[i].Step)
		}
	}
}
