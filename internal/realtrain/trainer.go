package realtrain

import (
	"fmt"
	"math"
	"math/rand"

	"teco/internal/dba"
	"teco/internal/optim"
	"teco/internal/tensor"
)

// Config controls a fine-tuning run.
type Config struct {
	Steps    int     // training steps (default 1000)
	Batch    int     // minibatch size (default 32)
	LR       float64 // pre-training ADAM learning rate (default 3e-3)
	ClipNorm float64 // global-norm clip (default 1.0)
	Hidden   int     // MLP hidden width (default 128)
	Seed     int64   // RNG seed for data + init + batches
	PreSteps int     // "pre-training" steps before fine-tuning (default 1500)
	FineLR   float64 // fine-tuning LR (default 1e-5, small updates)
	// DBA switches on the dirty-byte parameter path.
	DBA bool
	// FP16Compute models mixed-precision training (paper §V): after the
	// FP32 parameters land on the accelerator, the GPU converts them to
	// FP16 for forward/backward. The conversion happens on the GPU, so
	// the CPU->GPU transfer stays FP32 and DBA still applies.
	FP16Compute bool
	// ActAfterSteps is `act_aft_steps`; ignored when !DBA. Negative
	// selects the paper default (500).
	ActAfterSteps int
	// DirtyBytes is `dirty_bytes` (default 2).
	DirtyBytes int
	// SampleEvery controls how often byte-change distributions and loss
	// are recorded (default every 10 steps).
	SampleEvery int
	// Arch selects the proxy architecture: "mlp" (default) or
	// "attention" (single-head self-attention classifier).
	Arch string
}

func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 1000
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 1.0
	}
	if c.Hidden == 0 {
		c.Hidden = 128
	}
	if c.PreSteps == 0 {
		c.PreSteps = 1500
	}
	if c.FineLR == 0 {
		c.FineLR = 1e-5
	}
	if c.DirtyBytes == 0 {
		c.DirtyBytes = dba.DefaultDirtyBytes
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10
	}
	if c.Arch == "" {
		c.Arch = "mlp"
	}
	return c
}

// proxyModel is the architecture interface both proxies satisfy.
type proxyModel interface {
	NumParams() int
	Parameters() []float32
	LossAndGrad(params []float32, ds *Dataset, batch []int, grads []float32) float64
	Accuracy(params []float32, ds *Dataset) float64
	MeanLoss(params []float32, ds *Dataset) float64
}

// Parameters returns the MLP's flat parameter vector.
func (m *MLP) Parameters() []float32 { return m.Params }

// Parameters returns the attention model's flat parameter vector.
func (m *Attention) Parameters() []float32 { return m.Params }

func newProxy(cfg Config, ds *Dataset) proxyModel {
	switch cfg.Arch {
	case "attention":
		return NewAttention(ds.Vocab, ds.Dim, ds.Classes, cfg.Seed+1)
	case "mlp":
		return NewMLP(ds.Vocab, ds.Dim, cfg.Hidden, ds.Classes, cfg.Seed+1)
	default:
		panic(fmt.Sprintf("realtrain: unknown architecture %q", cfg.Arch))
	}
}

// StepSample is one recorded point of a run.
type StepSample struct {
	Step int
	Loss float64 // minibatch training loss
	// ParamDist / GradDist classify byte changes versus the previous
	// sampled step (Fig 2).
	ParamDist tensor.Distribution
	GradDist  tensor.Distribution
	// DBAActive reports whether the dirty-byte path was on at this step.
	DBAActive bool
}

// Result is a completed fine-tuning run.
type Result struct {
	Config      Config
	Samples     []StepSample
	FinalLoss   float64 // test cross-entropy of the *accelerator* params
	FinalAcc    float64 // test accuracy of the accelerator params
	Perplexity  float64 // exp(test loss) — the GPT-2-style metric proxy
	MasterAcc   float64 // accuracy of the CPU master copy (no DBA error)
	ActivatedAt int     // step DBA activated, -1 if never
	// DivergedBits counts master/accelerator words whose upper two bytes
	// differ at the end (the accumulated DBA staleness).
	DivergedWords int
}

// Run executes the fine-tuning experiment: pre-train to convergence
// neighbourhood, then fine-tune with the ZeRO-Offload dataflow where the
// accelerator's compute copy is refreshed through the (optionally DBA'd)
// parameter path.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	ds := NewDataset(DatasetConfig{Seed: cfg.Seed})
	m := newProxy(cfg, ds)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	n := m.NumParams()
	master := m.Parameters()      // CPU master copy (FP32, exact)
	compute := make([]float32, n) // accelerator copy (fwd/bwd uses this)
	grads := make([]float32, n)

	// Phase 0: "pre-training" — the paper fine-tunes pre-trained models;
	// we reach the convergence neighbourhood first so the fine-tuning
	// updates are small (the regime where DBA's premise holds).
	pre := optim.NewAdam(n, optim.AdamConfig{LR: cfg.LR})
	for s := 0; s < cfg.PreSteps; s++ {
		batch := ds.Batch(rng, cfg.Batch)
		m.LossAndGrad(master, ds, batch, grads)
		optim.ClipGlobalNorm(grads, cfg.ClipNorm)
		pre.Step(master, grads)
	}

	// Fine-tuning with the offload dataflow.
	copy(compute, master)
	ad := optim.NewAdam(n, optim.AdamConfig{LR: cfg.FineLR})
	ctrl := dba.NewController(cfg.ActAfterSteps, cfg.DirtyBytes)

	res := Result{Config: cfg, ActivatedAt: -1}
	prevMaster := make([]float32, n)
	prevGrads := make([]float32, n)
	copy(prevMaster, master)

	fp16View := make([]float32, n)
	for s := 0; s < cfg.Steps; s++ {
		// Forward/backward on the ACCELERATOR copy (possibly stale in
		// its high bytes when DBA is on). Under mixed precision the GPU
		// first rounds its copy through binary16.
		fwdParams := compute
		if cfg.FP16Compute {
			for i := range compute {
				fp16View[i] = tensor.RoundTripFP16(compute[i])
			}
			fwdParams = fp16View
		}
		batch := ds.Batch(rng, cfg.Batch)
		loss := m.LossAndGrad(fwdParams, ds, batch, grads)
		// Gradients cross GPU->CPU in full FP32 (no DBA for grads).
		optim.ClipGlobalNorm(grads, cfg.ClipNorm)
		ad.Step(master, grads)

		active := false
		if cfg.DBA {
			active = ctrl.CheckActivation(s)
		}
		// Parameter transfer CPU->GPU.
		if active {
			mergeDirtyBytes(compute, master, cfg.DirtyBytes)
		} else {
			copy(compute, master)
		}

		if s%cfg.SampleEvery == 0 || s == cfg.Steps-1 {
			sample := StepSample{Step: s, Loss: loss, DBAActive: active}
			for i := 0; i < n; i++ {
				sample.ParamDist.Observe(prevMaster[i], master[i])
				sample.GradDist.Observe(prevGrads[i], grads[i])
			}
			res.Samples = append(res.Samples, sample)
		}
		copy(prevMaster, master)
		copy(prevGrads, grads)
	}
	if cfg.DBA {
		res.ActivatedAt = ctrl.ActivatedAt()
	}

	res.FinalLoss = m.MeanLoss(compute, ds)
	res.FinalAcc = m.Accuracy(compute, ds)
	res.Perplexity = math.Exp(res.FinalLoss)
	res.MasterAcc = m.Accuracy(master, ds)
	for i := 0; i < n; i++ {
		if math.Float32bits(master[i])>>16 != math.Float32bits(compute[i])>>16 {
			res.DivergedWords++
		}
	}
	return res
}

// mergeDirtyBytes applies the Disaggregator semantics word-by-word: the
// low n bytes of each FP32 master value overwrite the compute copy's low
// bytes; the high bytes keep whatever the accelerator last had.
func mergeDirtyBytes(compute, master []float32, n int) {
	if n <= 0 || n > 4 {
		panic(fmt.Sprintf("realtrain: dirty bytes %d", n))
	}
	if n == 4 {
		copy(compute, master)
		return
	}
	mask := uint32(1)<<(uint(n)*8) - 1 // low n bytes
	for i := range compute {
		cb := math.Float32bits(compute[i])
		mb := math.Float32bits(master[i])
		compute[i] = math.Float32frombits((cb &^ mask) | (mb & mask))
	}
}

// AggregateDistributions sums the per-sample distributions of a run.
func (r Result) AggregateDistributions() (params, grads tensor.Distribution) {
	for _, s := range r.Samples {
		params.Add(s.ParamDist)
		grads.Add(s.GradDist)
	}
	return
}

// LossCurve returns (steps, losses) for plotting Fig 10.
func (r Result) LossCurve() ([]int, []float64) {
	steps := make([]int, len(r.Samples))
	losses := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		steps[i] = s.Step
		losses[i] = s.Loss
	}
	return steps, losses
}
