package realtrain

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"teco/internal/checkpoint"
	"teco/internal/conformance/check"
	"teco/internal/dba"
	"teco/internal/optim"
	"teco/internal/parallel"
	"teco/internal/tensor"
	"teco/internal/tiering"
)

// Config controls a fine-tuning run.
type Config struct {
	Steps    int     // training steps (default 1000)
	Batch    int     // minibatch size (default 32)
	LR       float64 // pre-training ADAM learning rate (default 3e-3)
	ClipNorm float64 // global-norm clip (default 1.0)
	Hidden   int     // MLP hidden width (default 128)
	Seed     int64   // RNG seed for data + init + batches
	PreSteps int     // "pre-training" steps before fine-tuning (default 1500)
	FineLR   float64 // fine-tuning LR (default 1e-5, small updates)
	// DBA switches on the dirty-byte parameter path.
	DBA bool
	// FP16Compute models mixed-precision training (paper §V): after the
	// FP32 parameters land on the accelerator, the GPU converts them to
	// FP16 for forward/backward. The conversion happens on the GPU, so
	// the CPU->GPU transfer stays FP32 and DBA still applies.
	FP16Compute bool
	// ActAfterSteps is `act_aft_steps`; ignored when !DBA. Negative
	// selects the paper default (500).
	ActAfterSteps int
	// DirtyBytes is `dirty_bytes` (default 2).
	DirtyBytes int
	// SampleEvery controls how often byte-change distributions and loss
	// are recorded (default every 10 steps).
	SampleEvery int
	// Arch selects the proxy architecture: "mlp" (default), "attention"
	// (single-head self-attention classifier) or "stack" (the N-layer
	// residual transformer the per-layer offload scheduler targets).
	Arch string
	// Layers is the block count of the "stack" arch (default 2); other
	// architectures ignore it.
	Layers int
	// Per-layer offload scheduling knobs. Setting any of them routes the
	// step's parameter/gradient traffic through an OffloadScheduler:
	// layer-granular segments staged through internal/staging under a
	// capacity-bounded fast-tier residency model. Like Workers these are
	// pure scheduling knobs — the trained model is bit-identical at every
	// setting (asserted by the metamorphic suite) — so all four are
	// excluded from the config fingerprint and snapshots restore across
	// scheduling configurations.
	SchedCacheWords int    // fast-tier capacity in FP32 words; 0 = every layer fits
	SchedPrefetch   int    // eager-prefetch depth in layers; 0 = demand-only
	SchedPolicy     string // eviction policy: "" or "lru", "fifo", "pin"
	SchedPinned     int    // pinned hot-layer count (policy "pin")
	// Heterogeneous-memory tiering knobs. Setting any of them attaches a
	// tiering.Controller that replays each step's slot accesses (parameter
	// and optimizer-state slots per segment) against a DRAM/CXL placement
	// and plans budget-throttled hot/cold migrations. Pure bookkeeping —
	// placement never touches the numerics, so the trained model is
	// bit-identical at every setting (asserted by the metamorphic suite)
	// and all three are excluded from the config fingerprint like the
	// scheduling knobs above.
	TierDRAMPct      int    // fast-tier capacity as % of tiered slot bytes; 0 = everything fits
	TierPolicy       string // placement policy: "" or "heat", "lru", "static"
	TierMigrateWords int    // per-step migration budget in FP32 words; 0 = static placement
	// SDCChecks enables the silent-data-corruption guards: per-tensor
	// checksums validated at every step boundary and after each DBA
	// merge, and a NaN/Inf scan of the master parameters after each ADAM
	// step. The guards are read-only — they never change the numerics —
	// but cost one CRC pass per resident tensor per step, so they default
	// off for the accuracy experiments and on inside core.Session.
	SDCChecks bool
	// Workers parallelizes the per-step hot loops (ADAM update, dirty-byte
	// merge and scan, FP16 rounding, SDC checksum guards) over chunked
	// goroutines. 0 or 1 is the serial fallback; negative uses GOMAXPROCS.
	// Purely a scheduling knob: every parallel loop is element-wise or
	// combines with exact arithmetic, so the run is bit-identical at any
	// worker count (asserted by determinism_test.go) and Workers is
	// excluded from the config fingerprint — a snapshot taken at one
	// worker count restores at any other.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 1000
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 1.0
	}
	if c.Hidden == 0 {
		c.Hidden = 128
	}
	if c.PreSteps == 0 {
		c.PreSteps = 1500
	}
	if c.FineLR == 0 {
		c.FineLR = 1e-5
	}
	if c.DirtyBytes == 0 {
		c.DirtyBytes = dba.DefaultDirtyBytes
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10
	}
	if c.Arch == "" {
		c.Arch = "mlp"
	}
	if c.Arch == "stack" && c.Layers == 0 {
		c.Layers = 2
	}
	return c
}

// configTag fingerprints the numerically relevant configuration. A
// snapshot only restores into a trainer whose tag matches: resuming under
// different hyperparameters would silently diverge from the original run.
// SDCChecks is excluded — the guards are read-only and a guarded session
// may restore a snapshot written by an unguarded run. Workers is excluded
// for the same reason: parallel and serial runs are bit-identical, so a
// snapshot written at one worker count restores at any other. The offload
// scheduling knobs (SchedCacheWords/SchedPrefetch/SchedPolicy/SchedPinned)
// are excluded on the same grounds: residency policy never changes the
// numerics, so a snapshot taken under one policy restores under any other.
func (c Config) configTag() uint64 {
	h := fnv.New64a()
	cc := c
	cc.SDCChecks = false
	cc.Workers = 0
	cc.SchedCacheWords = 0
	cc.SchedPrefetch = 0
	cc.SchedPolicy = ""
	cc.SchedPinned = 0
	cc.TierDRAMPct = 0
	cc.TierPolicy = ""
	cc.TierMigrateWords = 0
	fmt.Fprintf(h, "%+v", cc)
	return h.Sum64()
}

// WithDefaults returns the effective configuration (every zero knob
// replaced by its default) — exported so run caches can key on the
// canonical config.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// proxyModel is the architecture interface both proxies satisfy.
type proxyModel interface {
	NumParams() int
	Parameters() []float32
	LossAndGrad(params []float32, ds *Dataset, batch []int, grads []float32) float64
	Accuracy(params []float32, ds *Dataset) float64
	MeanLoss(params []float32, ds *Dataset) float64
}

// Parameters returns the MLP's flat parameter vector.
func (m *MLP) Parameters() []float32 { return m.Params }

// Parameters returns the attention model's flat parameter vector.
func (m *Attention) Parameters() []float32 { return m.Params }

func newProxy(cfg Config, ds *Dataset) proxyModel {
	switch cfg.Arch {
	case "attention":
		return NewAttention(ds.Vocab, ds.Dim, ds.Classes, cfg.Seed+1)
	case "stack":
		return NewLayerStack(ds.Vocab, ds.Dim, ds.Classes, cfg.Layers, cfg.Seed+1)
	case "mlp":
		return NewMLP(ds.Vocab, ds.Dim, cfg.Hidden, ds.Classes, cfg.Seed+1)
	default:
		panic(fmt.Sprintf("realtrain: unknown architecture %q", cfg.Arch))
	}
}

// StepSample is one recorded point of a run.
type StepSample struct {
	Step int
	Loss float64 // minibatch training loss
	// ParamDist / GradDist classify byte changes versus the previous
	// sampled step (Fig 2).
	ParamDist tensor.Distribution
	GradDist  tensor.Distribution
	// DBAActive reports whether the dirty-byte path was on at this step.
	DBAActive bool
}

// Result is a completed fine-tuning run.
type Result struct {
	Config      Config
	Samples     []StepSample
	FinalLoss   float64 // test cross-entropy of the *accelerator* params
	FinalAcc    float64 // test accuracy of the accelerator params
	Perplexity  float64 // exp(test loss) — the GPT-2-style metric proxy
	MasterAcc   float64 // accuracy of the CPU master copy (no DBA error)
	ActivatedAt int     // step DBA activated, -1 if never
	// DivergedBits counts master/accelerator words whose upper two bytes
	// differ at the end (the accumulated DBA staleness).
	DivergedWords int
}

// CorruptionError reports a silent-data-corruption detection: a resident
// tensor's checksum no longer matches its last recorded value, or ADAM
// produced a non-finite parameter. The step that detected it made no
// further state changes; the owner must roll back to a checkpoint.
type CorruptionError struct {
	// Tensor names the buffer that failed ("master", "compute",
	// "adam.m", "adam.v").
	Tensor string
	// Index is the first offending element for NaN/Inf detections, -1
	// for checksum mismatches (the CRC localizes nothing).
	Index int
	// NonFinite distinguishes the NaN/Inf scan from a checksum mismatch.
	NonFinite bool
}

func (e *CorruptionError) Error() string {
	if e.NonFinite {
		return fmt.Sprintf("realtrain: non-finite value in %s at %d (silent data corruption)", e.Tensor, e.Index)
	}
	return fmt.Sprintf("realtrain: checksum mismatch on %s (silent data corruption)", e.Tensor)
}

// IsCorruption reports whether err is a silent-data-corruption detection.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// Trainer is a step-wise, checkpointable fine-tuning run: pre-training
// happens at construction, then each Step() executes one fine-tuning step
// of the ZeRO-Offload dataflow where the accelerator's compute copy is
// refreshed through the (optionally DBA'd) parameter path. Snapshot() and
// restore (NewTrainerFromSnapshot) are bit-exact: a restored trainer
// produces the same parameters, ADAM moments and loss trajectory as an
// uninterrupted run with the same seeds.
type Trainer struct {
	cfg   Config
	ds    *Dataset
	model proxyModel
	src   *checkpoint.CountingSource
	rng   *rand.Rand
	ad    *optim.Adam
	ctrl  *dba.Controller
	sched *OffloadScheduler   // nil unless an offload-scheduling knob is set
	tier  *tiering.Controller // nil unless a tiering knob is set

	master     []float32 // CPU master copy (aliases the model's params)
	compute    []float32 // accelerator copy (fwd/bwd uses this)
	grads      []float32
	prevMaster []float32
	prevGrads  []float32
	fp16View   []float32

	step    int
	samples []StepSample
	batch   []int         // reusable minibatch index buffer
	fs      *fusedScratch // per-chunk slots for the fused ADAM epilogue

	// gradFn, when set, replaces the local forward/backward: the
	// data-parallel fabric group installs its sharded tape pipeline here.
	// nil (the default) leaves the single-trainer behaviour untouched.
	gradFn func(fwdParams []float32, batch []int, grads []float32) (float64, error)

	// SDC guard state: last recorded per-tensor checksums.
	masterSum, computeSum uint16
	adamMSum, adamVSum    uint16
	sumsValid             bool
}

// NewTrainer builds a trainer and runs the pre-training phase ("the paper
// fine-tunes pre-trained models"; we reach the convergence neighbourhood
// first so the fine-tuning updates are small — the regime where DBA's
// premise holds). It is exactly Pretrain followed by NewTrainerFromPre, so
// sharing a PreState across runs whose pre-phase configuration matches is
// bit-identical to pre-training each run from scratch by construction.
func NewTrainer(cfg Config) (*Trainer, error) {
	pre, err := Pretrain(cfg)
	if err != nil {
		return nil, err
	}
	return NewTrainerFromPre(cfg, pre)
}

// PreState is the trainer state at the end of the pre-training phase: the
// master parameters and the batch-RNG draw position. Runs that differ only
// in fine-tuning knobs (DBA, ActAfterSteps, DirtyBytes, Steps, FineLR,
// FP16Compute, SampleEvery, SDCChecks, Workers) share the same pre-phase,
// so a PreState computed once can seed all of them — the memoization the
// experiment suite uses to pre-train each seed exactly once.
type PreState struct {
	tag    uint64
	params []float32
	draws  uint64
}

// preTag fingerprints the configuration knobs the pre-training phase
// depends on: dataset/model/RNG seeds and the pre-phase optimizer recipe.
func (c Config) preTag() uint64 {
	c = c.withDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d batch=%d lr=%g clip=%g hidden=%d presteps=%d arch=%s layers=%d",
		c.Seed, c.Batch, c.LR, c.ClipNorm, c.Hidden, c.PreSteps, c.Arch, c.Layers)
	return h.Sum64()
}

// Pretrain runs only the pre-training phase for cfg and returns its final
// state.
func Pretrain(cfg Config) (*PreState, error) {
	t, err := newTrainerShell(cfg)
	if err != nil {
		return nil, err
	}
	// Phase 0: "pre-training" on the master copy.
	pre, err := optim.NewAdam(len(t.master), optim.AdamConfig{LR: t.cfg.LR, Workers: t.cfg.Workers})
	if err != nil {
		return nil, err
	}
	for s := 0; s < t.cfg.PreSteps; s++ {
		t.batch = t.ds.BatchInto(t.rng, t.batch, t.cfg.Batch)
		t.model.LossAndGrad(t.master, t.ds, t.batch, t.grads)
		// Deferred clip: the scale folds into the fused ADAM pass, saving
		// one full gradient walk per pre-training step (bit-identical —
		// see optim.ClipScale).
		_, scale := optim.ClipScale(t.grads, t.cfg.ClipNorm)
		if err := pre.StepFused(t.master, t.grads, scale, nil); err != nil {
			return nil, err
		}
	}
	return &PreState{
		tag:    cfg.preTag(),
		params: append([]float32(nil), t.master...),
		draws:  t.src.Draws(),
	}, nil
}

// NewTrainerFromPre builds a fine-tune-ready trainer from a shared
// pre-training state: the master/compute/previous copies start from the
// pre-trained parameters and the batch RNG is fast-forwarded to the
// recorded draw position, so the run is bit-identical to one whose
// pre-training executed inline.
func NewTrainerFromPre(cfg Config, pre *PreState) (*Trainer, error) {
	if pre.tag != cfg.preTag() {
		return nil, fmt.Errorf("realtrain: pre-state tag %x does not match config pre-phase %x", pre.tag, cfg.preTag())
	}
	t, err := newTrainerShell(cfg)
	if err != nil {
		return nil, err
	}
	if len(pre.params) != len(t.master) {
		return nil, fmt.Errorf("realtrain: pre-state has %d params, model has %d", len(pre.params), len(t.master))
	}
	copy(t.master, pre.params)
	copy(t.compute, t.master)
	copy(t.prevMaster, t.master)
	t.src.FastForward(pre.draws)
	t.recordSums()
	return t, nil
}

// newTrainerShell allocates everything that does not depend on training
// history: dataset, model, RNG, optimizer, DBA controller, buffers.
func newTrainerShell(cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	ds := NewDataset(DatasetConfig{Seed: cfg.Seed})
	m := newProxy(cfg, ds)
	src := checkpoint.NewCountingSource(cfg.Seed + 2)

	n := m.NumParams()
	ad, err := optim.NewAdam(n, optim.AdamConfig{LR: cfg.FineLR, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	var sched *OffloadScheduler
	if cfg.schedEnabled() {
		if sched, err = newScheduler(m, cfg, ds.TokensPer); err != nil {
			return nil, err
		}
	}
	var tier *tiering.Controller
	if cfg.tierEnabled() {
		if tier, err = newTierController(m, cfg); err != nil {
			return nil, err
		}
	}
	return &Trainer{
		cfg:        cfg,
		ds:         ds,
		model:      m,
		src:        src,
		rng:        rand.New(src),
		ad:         ad,
		ctrl:       dba.NewController(cfg.ActAfterSteps, cfg.DirtyBytes),
		sched:      sched,
		tier:       tier,
		master:     m.Parameters(),
		compute:    make([]float32, n),
		grads:      make([]float32, n),
		prevMaster: make([]float32, n),
		prevGrads:  make([]float32, n),
		fp16View:   make([]float32, n),
	}, nil
}

// Config returns the effective (defaulted) configuration.
func (t *Trainer) Config() Config { return t.cfg }

// StepCount returns the number of completed fine-tuning steps.
func (t *Trainer) StepCount() int { return t.step }

// Done reports whether the configured number of steps has completed.
func (t *Trainer) Done() bool { return t.step >= t.cfg.Steps }

// MasterParams returns the live CPU master parameter vector (read-only to
// callers; the recovery tests compare it bit-wise across runs).
func (t *Trainer) MasterParams() []float32 { return t.master }

// ComputeParams returns the live accelerator compute copy.
func (t *Trainer) ComputeParams() []float32 { return t.compute }

// Moments returns the live ADAM moment vectors.
func (t *Trainer) Moments() (m, v []float32) { return t.ad.Moments() }

// Samples returns the loss-trajectory samples recorded so far.
func (t *Trainer) Samples() []StepSample { return t.samples }

// SchedStats returns the offload scheduler's residency/heat accounting and
// whether a scheduler is active. Counters live outside Result and the
// checkpoint format: they describe transfer scheduling, not the trained
// model, so crash/restore equality is unaffected by them.
func (t *Trainer) SchedStats() (SchedStats, bool) {
	if t.sched == nil {
		return SchedStats{}, false
	}
	return t.sched.Stats(), true
}

// recordSums refreshes every per-tensor checksum after legitimate
// mutations. The four tensors are independent, so their CRC passes run
// concurrently under cfg.Workers; each tensor's CRC itself stays serial
// (CRC is order-dependent), so every checksum is bit-identical to the
// serial guard.
func (t *Trainer) recordSums() {
	if !t.cfg.SDCChecks {
		return
	}
	am, av := t.ad.Moments()
	parallel.Do(t.cfg.Workers,
		func() { t.masterSum = checkpoint.Checksum(t.master) },
		func() { t.computeSum = checkpoint.Checksum(t.compute) },
		func() { t.adamMSum = checkpoint.Checksum(am) },
		func() { t.adamVSum = checkpoint.Checksum(av) })
	t.sumsValid = true
}

// verifySums compares every resident tensor against its recorded checksum
// — the guard that catches out-of-band corruption (a poisoned line that
// slipped past the link CRC, a bit flip in host memory) before the step
// consumes it.
func (t *Trainer) verifySums() error {
	if !t.cfg.SDCChecks || !t.sumsValid {
		return nil
	}
	am, av := t.ad.Moments()
	// The four CRC passes run concurrently; the reported tensor is always
	// the first mismatch in the fixed order below, independent of which
	// goroutine finishes first. The serial path is fully separate — it
	// must not share locals with the closures below, whose captures would
	// force a heap allocation on every call of the trainer's zero-alloc
	// steady-state step.
	if parallel.HotResolve(t.cfg.Workers) <= 1 {
		if checkpoint.Checksum(t.master) != t.masterSum {
			return &CorruptionError{Tensor: "master", Index: -1}
		}
		if checkpoint.Checksum(t.compute) != t.computeSum {
			return &CorruptionError{Tensor: "compute", Index: -1}
		}
		if checkpoint.Checksum(am) != t.adamMSum {
			return &CorruptionError{Tensor: "adam.m", Index: -1}
		}
		if checkpoint.Checksum(av) != t.adamVSum {
			return &CorruptionError{Tensor: "adam.v", Index: -1}
		}
		return nil
	}
	var ok [4]bool
	parallel.Do(t.cfg.Workers,
		func() { ok[0] = checkpoint.Checksum(t.master) == t.masterSum },
		func() { ok[1] = checkpoint.Checksum(t.compute) == t.computeSum },
		func() { ok[2] = checkpoint.Checksum(am) == t.adamMSum },
		func() { ok[3] = checkpoint.Checksum(av) == t.adamVSum })
	for i, name := range [4]string{"master", "compute", "adam.m", "adam.v"} {
		if !ok[i] {
			return &CorruptionError{Tensor: name, Index: -1}
		}
	}
	return nil
}

// VerifyIntegrity runs the full SDC guard sweep regardless of SDCChecks:
// checksum validation (when recorded) plus a non-finite scan of master
// parameters and both moment vectors. The session calls it after every
// restore before trusting the resumed state.
func (t *Trainer) VerifyIntegrity() error {
	if err := t.verifySums(); err != nil {
		return err
	}
	if i := optim.FirstNonFiniteWorkers(t.master, t.cfg.Workers); i >= 0 {
		return &CorruptionError{Tensor: "master", Index: i, NonFinite: true}
	}
	am, av := t.ad.Moments()
	if i := optim.FirstNonFiniteWorkers(am, t.cfg.Workers); i >= 0 {
		return &CorruptionError{Tensor: "adam.m", Index: i, NonFinite: true}
	}
	if i := optim.FirstNonFiniteWorkers(av, t.cfg.Workers); i >= 0 {
		return &CorruptionError{Tensor: "adam.v", Index: i, NonFinite: true}
	}
	return nil
}

// Step executes one fine-tuning step. On a silent-data-corruption
// detection it returns a *CorruptionError and guarantees the error was
// raised before the corrupt data could be committed past the failing
// phase; the owner rolls back to the last checkpoint and replays.
func (t *Trainer) Step() error {
	if t.Done() {
		return fmt.Errorf("realtrain: step %d past configured %d steps", t.step, t.cfg.Steps)
	}
	// Guard: the state this step consumes must match what the previous
	// step recorded.
	if err := t.verifySums(); err != nil {
		return err
	}

	s := t.step
	// Forward/backward on the ACCELERATOR copy (possibly stale in its
	// high bytes when DBA is on). Under mixed precision the GPU first
	// rounds its copy through binary16.
	fwdParams := t.compute
	if t.cfg.FP16Compute {
		// Element-wise rounding: chunked goroutines keep the serial bits.
		parallel.ForChunks(t.cfg.Workers, len(t.compute), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				t.fp16View[i] = tensor.RoundTripFP16(t.compute[i])
			}
		})
		fwdParams = t.fp16View
	}
	batch := t.ds.BatchInto(t.rng, t.batch, t.cfg.Batch)
	t.batch = batch
	var loss float64
	if t.gradFn != nil {
		var err error
		if loss, err = t.gradFn(fwdParams, batch, t.grads); err != nil {
			return err
		}
	} else {
		loss = t.model.LossAndGrad(fwdParams, t.ds, batch, t.grads)
	}
	// Gradients cross GPU->CPU in full FP32 (no DBA for grads). The clip's
	// norm reduction runs first (it needs every gradient); the scaling
	// itself is deferred into the fused ADAM pass.
	_, clipScale := optim.ClipScale(t.grads, t.cfg.ClipNorm)
	// Fused ADAM pass: one traversal of master/grads/moments applies the
	// clip scale and the ADAM update, then per chunk the epilogue runs the
	// post-step tensor walks that used to be standalone passes — the
	// NaN/Inf guard, the master and moment CRC chunks, the sampled
	// byte-change distributions, and the previous-value copies. Per-chunk
	// partials are combined after the pass in chunk order (exact folds),
	// so every result is bit-identical to the unfused sequence at any
	// worker count. The previous-value copies land before any corruption
	// error is returned below; that is unobservable — a corruption step's
	// trainer is discarded for a checkpoint restore, never stepped on.
	sdc := t.cfg.SDCChecks
	fs := t.fused(len(t.master))
	fs.sdc = sdc
	fs.sample = s%t.cfg.SampleEvery == 0 || s == t.cfg.Steps-1
	fs.am, fs.av = t.ad.Moments()
	if err := t.ad.StepFused(t.master, t.grads, clipScale, fs.epi); err != nil {
		return err
	}
	// Guard: a NaN produced by ADAM on corrupted bytes must trigger
	// rollback, not poison the master copy for the rest of the run. The
	// fold walks chunks in ascending order, so the reported index is the
	// serial scan's first hit.
	if sdc {
		if i := fs.firstNonFinite(); i >= 0 {
			return &CorruptionError{Tensor: "master", Index: i, NonFinite: true}
		}
	}

	active := false
	if t.cfg.DBA {
		active = t.ctrl.CheckActivation(s)
	}
	// Parameter transfer CPU->GPU. Under the offload scheduler the step's
	// layer traversal (forward + prefetch, backward + gradient stream-out)
	// is replayed against the residency model and every segment routes
	// through the staging buffers — bit-identical to the whole-vector
	// transfer below, which remains the single-block fast path.
	if t.sched != nil {
		if err := t.sched.Step(t.compute, t.master, t.grads, active,
			t.cfg.DirtyBytes, t.cfg.Workers, t.cfg.SchedPrefetch, len(batch)); err != nil {
			return err
		}
	} else if active {
		dba.MergeWords(t.compute, t.master, t.cfg.DirtyBytes, t.cfg.Workers)
	} else {
		copy(t.compute, t.master)
	}
	// Guard: validate the merge result against the master copy it was
	// built from — the low dirty bytes must match the master bit-exactly
	// (a corrupt merge is exactly the failure TECO's DBA design cannot
	// tolerate silently).
	if t.cfg.SDCChecks && active {
		if i := dba.FirstMergeMismatch(t.compute, t.master, t.cfg.DirtyBytes, t.cfg.Workers); i >= 0 {
			return &CorruptionError{Tensor: "compute", Index: i}
		}
	}

	if fs.sample {
		// The distributions were gathered inside the fused pass (before
		// the previous-value copies clobbered their baselines); folding
		// per-chunk counts in chunk order is dba.ScanChanged's combine.
		t.samples = append(t.samples, StepSample{
			Step: s, Loss: loss, DBAActive: active,
			ParamDist: foldDist(fs.pDist),
			GradDist:  foldDist(fs.gDist),
		})
	}
	// Tiering bookkeeping: replay the step's slot accesses against the
	// placement controller and plan this step's migrations. Placement never
	// feeds back into the numerics above — any tiering config trains
	// bit-identically to the static baseline.
	if t.tier != nil {
		t.tierWalk()
	}
	t.step++
	t.recordSumsFused(fs)
	if check.Enabled() {
		t.checkStep(active)
	}
	return nil
}

// recordSumsFused refreshes the per-tensor checksums at the end of a fused
// step: master and moment CRCs fold from the chunks the fused epilogue
// already computed (no extra tensor walk); only the compute copy — written
// by the merge after the fused pass — needs a fresh CRC. Each fold is
// bit-identical to checkpoint.Checksum over the whole tensor.
func (t *Trainer) recordSumsFused(fs *fusedScratch) {
	if !t.cfg.SDCChecks {
		return
	}
	t.masterSum = fs.foldCRC(fs.crcMaster)
	t.adamMSum = fs.foldCRC(fs.crcM)
	t.adamVSum = fs.foldCRC(fs.crcV)
	t.computeSum = checkpoint.ChecksumWorkers(t.compute, t.cfg.Workers)
	t.sumsValid = true
}

// checkStep asserts the trainer's per-step invariants under the conformance
// layer (independent of the SDCChecks guards, which turn detections into
// rollbacks rather than failures): the master copy stays finite, and an
// active DBA merge leaves the compute copy carrying the master's dirty
// bytes exactly.
func (t *Trainer) checkStep(active bool) {
	check.Check(
		func() error {
			if i := optim.FirstNonFiniteWorkers(t.master, t.cfg.Workers); i >= 0 {
				return fmt.Errorf("realtrain: non-finite master word %d after step %d", i, t.step-1)
			}
			return nil
		},
		func() error {
			if !active {
				return nil
			}
			if i := dba.FirstMergeMismatch(t.compute, t.master, t.cfg.DirtyBytes, t.cfg.Workers); i >= 0 {
				return fmt.Errorf("realtrain: merge mismatch at word %d after step %d", i, t.step-1)
			}
			return nil
		},
	)
}

// Result finalizes the run: test metrics of the accelerator params, the
// master-copy reference accuracy, and the accumulated DBA staleness.
func (t *Trainer) Result() Result {
	res := Result{Config: t.cfg, ActivatedAt: -1, Samples: t.samples}
	if t.cfg.DBA {
		res.ActivatedAt = t.ctrl.ActivatedAt()
	}
	res.FinalLoss = t.model.MeanLoss(t.compute, t.ds)
	res.FinalAcc = t.model.Accuracy(t.compute, t.ds)
	res.Perplexity = math.Exp(res.FinalLoss)
	res.MasterAcc = t.model.Accuracy(t.master, t.ds)
	for i := range t.master {
		if math.Float32bits(t.master[i])>>16 != math.Float32bits(t.compute[i])>>16 {
			res.DivergedWords++
		}
	}
	return res
}

// Snapshot captures the trainer's complete resumable state.
func (t *Trainer) Snapshot() *checkpoint.Snapshot {
	am, av := t.ad.Moments()
	s := &checkpoint.Snapshot{
		ConfigTag:   t.cfg.configTag(),
		Seed:        t.cfg.Seed,
		Step:        int64(t.step),
		AdamStep:    int64(t.ad.StepCount()),
		ActivatedAt: int64(t.ctrl.ActivatedAt()),
		RNGDraws:    t.src.Draws(),
		Params:      append([]float32(nil), t.master...),
		Compute:     append([]float32(nil), t.compute...),
		AdamM:       append([]float32(nil), am...),
		AdamV:       append([]float32(nil), av...),
		PrevParams:  append([]float32(nil), t.prevMaster...),
		PrevGrads:   append([]float32(nil), t.prevGrads...),
	}
	for _, sm := range t.samples {
		s.Samples = append(s.Samples, checkpoint.Sample{
			Step: int64(sm.Step), Loss: sm.Loss, DBAActive: sm.DBAActive,
			ParamDist: sm.ParamDist, GradDist: sm.GradDist,
		})
	}
	return s
}

// NewTrainerFromSnapshot rebuilds a trainer from a snapshot without
// re-running pre-training: the dataset and model skeleton are regenerated
// from the seed, every tensor is copied from the snapshot, and the batch
// RNG is fast-forwarded to the recorded draw position — so the resumed run
// is bit-identical to the uninterrupted one from this step onward.
func NewTrainerFromSnapshot(cfg Config, snap *checkpoint.Snapshot) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if snap.ConfigTag != cfg.configTag() {
		return nil, fmt.Errorf("realtrain: snapshot config tag %x does not match run config %x", snap.ConfigTag, cfg.configTag())
	}
	if snap.Seed != cfg.Seed {
		return nil, fmt.Errorf("realtrain: snapshot seed %d does not match config seed %d", snap.Seed, cfg.Seed)
	}
	if snap.Step < 0 || snap.Step > int64(cfg.Steps) {
		return nil, fmt.Errorf("realtrain: snapshot step %d outside run of %d steps", snap.Step, cfg.Steps)
	}
	t, err := newTrainerShell(cfg)
	if err != nil {
		return nil, err
	}
	n := len(t.master)
	for name, v := range map[string][]float32{
		"params": snap.Params, "compute": snap.Compute,
		"adam.m": snap.AdamM, "adam.v": snap.AdamV,
		"prev.params": snap.PrevParams, "prev.grads": snap.PrevGrads,
	} {
		if len(v) != n {
			return nil, fmt.Errorf("realtrain: snapshot tensor %q has %d values, model has %d", name, len(v), n)
		}
	}
	copy(t.master, snap.Params)
	copy(t.compute, snap.Compute)
	copy(t.prevMaster, snap.PrevParams)
	copy(t.prevGrads, snap.PrevGrads)
	if err := t.ad.Restore(snap.AdamM, snap.AdamV, int(snap.AdamStep)); err != nil {
		return nil, err
	}
	t.ctrl.Restore(int(snap.ActivatedAt))
	t.src.FastForward(snap.RNGDraws)
	t.step = int(snap.Step)
	for _, sm := range snap.Samples {
		t.samples = append(t.samples, StepSample{
			Step: int(sm.Step), Loss: sm.Loss, DBAActive: sm.DBAActive,
			ParamDist: sm.ParamDist, GradDist: sm.GradDist,
		})
	}
	t.recordSums()
	return t, nil
}

// CorruptWord flips bits of one word of a resident tensor WITHOUT updating
// the recorded checksums — the silent-data-corruption injection hook the
// crash harness and the recovery sweep use. tensorName selects "master",
// "compute", "adam.m" or "adam.v".
func (t *Trainer) CorruptWord(tensorName string, index int, bitMask uint32) error {
	var buf []float32
	am, av := t.ad.Moments()
	switch tensorName {
	case "master":
		buf = t.master
	case "compute":
		buf = t.compute
	case "adam.m":
		buf = am
	case "adam.v":
		buf = av
	default:
		return fmt.Errorf("realtrain: unknown tensor %q", tensorName)
	}
	if index < 0 || index >= len(buf) {
		return fmt.Errorf("realtrain: corrupt index %d outside %d words", index, len(buf))
	}
	buf[index] = math.Float32frombits(math.Float32bits(buf[index]) ^ bitMask)
	return nil
}

// Run executes the fine-tuning experiment end to end; it is the
// non-checkpointed path every accuracy experiment uses, bit-identical to
// driving a Trainer manually.
func Run(cfg Config) Result {
	t, err := NewTrainer(cfg)
	if err != nil {
		panic(err) // static configs only; checkpointed runs use NewTrainer
	}
	for !t.Done() {
		if err := t.Step(); err != nil {
			panic(err)
		}
	}
	return t.Result()
}

// mergeDirtyBytes applies the Disaggregator semantics word-by-word — the
// serial convenience wrapper over dba.MergeWords the unit tests exercise.
func mergeDirtyBytes(compute, master []float32, n int) {
	dba.MergeWords(compute, master, n, 1)
}

// AggregateDistributions sums the per-sample distributions of a run.
func (r Result) AggregateDistributions() (params, grads tensor.Distribution) {
	for _, s := range r.Samples {
		params.Add(s.ParamDist)
		grads.Add(s.GradDist)
	}
	return
}

// LossCurve returns (steps, losses) for plotting Fig 10.
func (r Result) LossCurve() ([]int, []float64) {
	steps := make([]int, len(r.Samples))
	losses := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		steps[i] = s.Step
		losses[i] = s.Loss
	}
	return steps, losses
}
