package realtrain

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Per-sample gradient tapes: the unit of work the data-parallel fabric
// mode ships from a replica to the host.
//
// The house guarantee for the fabric trainer is bit-identity with the
// single-link Trainer at any replica count. FP32 accumulation is not
// associative, so replicas cannot pre-sum their shard's gradients — the
// host must apply every sample's contributions in the original batch
// order, with the original expression shapes. A sampleTape therefore
// carries exactly the per-sample intermediates LossAndGrad computes before
// its accumulator writes (h, x, dz, dh, dx and the loss term); replayTape
// then performs the accumulator writes verbatim. tapeSample's reductions
// (dh, dx) are the same single-expression multiply-adds over the same bits
// as LossAndGrad's interleaved loops, so the pair reproduces LossAndGrad
// bit-for-bit — asserted by TestTapeReplayMatchesLossAndGrad.

// sampleTape records one example's forward/backward intermediates.
type sampleTape struct {
	// pos is the example's position in the step's global batch; replay
	// happens in ascending pos order.
	pos int
	// idx is the dataset example index (resolves tok on the host).
	idx int
	// loss is the example's unnormalized -log p(y) term.
	loss float64
	// h, x: forward hidden activations (post-ReLU) and mean embedding.
	// dz, dh, dx: backward intermediates before accumulator writes.
	h, x, dz, dh, dx []float32
}

func newSampleTape(m *MLP) *sampleTape {
	return &sampleTape{
		h:  make([]float32, m.Hidden),
		x:  make([]float32, m.Dim),
		dz: make([]float32, m.Classes),
		dh: make([]float32, m.Hidden),
		dx: make([]float32, m.Dim),
	}
}

// tapeSample runs the forward and the non-accumulating half of the
// backward pass for one example, filling tp. inv is the global 1/B batch
// scale (the full batch size, not the shard's — the tape must be
// shard-count invariant).
func (m *MLP) tapeSample(params []float32, ds *Dataset, idx, pos int, inv float32, tp *sampleTape) {
	tok := ds.TrainTok[idx]
	y := ds.TrainY[idx]
	probs, h, x := m.forwardHidden(params, tok)
	tp.pos = pos
	tp.idx = idx
	p := float64(probs[y])
	if p < 1e-12 {
		p = 1e-12
	}
	tp.loss = -math.Log(p)
	copy(tp.h, h)
	copy(tp.x, x)
	for c := range tp.dz {
		tp.dz[c] = probs[c] * inv
	}
	tp.dz[y] -= inv
	_, w1, _, w2, _ := m.views(params)
	for j := 0; j < m.Hidden; j++ {
		w2row := w2[j*m.Classes : (j+1)*m.Classes]
		var s float32
		for c, dzc := range tp.dz {
			s += w2row[c] * dzc
		}
		tp.dh[j] = s
	}
	for d := 0; d < m.Dim; d++ {
		base := d * m.Hidden
		w1row := w1[base : base+m.Hidden]
		var s float32
		for j := 0; j < m.Hidden; j++ {
			if tp.h[j] <= 0 {
				continue
			}
			s += w1row[j] * tp.dh[j]
		}
		tp.dx[d] = s
	}
}

// replayTape applies one example's accumulator writes to grads, in exactly
// the order and with exactly the expressions LossAndGrad uses.
func (m *MLP) replayTape(grads []float32, ds *Dataset, tp *sampleTape) {
	gemb, gw1, gb1, gw2, gb2 := m.views(grads)
	for j := 0; j < m.Hidden; j++ {
		hj := tp.h[j]
		gw2row := gw2[j*m.Classes : (j+1)*m.Classes]
		for c, dzc := range tp.dz {
			gw2row[c] += hj * dzc
		}
	}
	for c := 0; c < m.Classes; c++ {
		gb2[c] += tp.dz[c]
	}
	for j := 0; j < m.Hidden; j++ {
		if tp.h[j] <= 0 {
			continue
		}
		gb1[j] += tp.dh[j]
	}
	for d := 0; d < m.Dim; d++ {
		base := d * m.Hidden
		gw1row := gw1[base : base+m.Hidden]
		xd := tp.x[d]
		for j := 0; j < m.Hidden; j++ {
			if tp.h[j] <= 0 {
				continue
			}
			gw1row[j] += xd * tp.dh[j]
		}
	}
	tok := ds.TrainTok[tp.idx]
	tokInv := float32(1.0 / float64(len(tok)))
	for _, t := range tok {
		base := t * m.Dim
		for d := 0; d < m.Dim; d++ {
			gemb[base+d] += tp.dx[d] * tokInv
		}
	}
}

// tapeWireLen is the encoded size of a tape for model m.
func tapeWireLen(m *MLP) int {
	return 16 + 4*(2*m.Hidden+2*m.Dim+m.Classes)
}

// appendEncode serializes the tape (the fabric frame payload): pos, idx,
// loss bits, then the f32 arrays h, x, dz, dh, dx, all little-endian.
func (tp *sampleTape) appendEncode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(tp.pos))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(tp.idx))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(tp.loss))
	for _, arr := range [][]float32{tp.h, tp.x, tp.dz, tp.dh, tp.dx} {
		for _, v := range arr {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	return dst
}

// decodeTape deserializes into tp, which must be shaped for the model the
// payload was produced with (length-checked, fail-closed).
func (tp *sampleTape) decode(buf []byte, m *MLP) error {
	if len(buf) != tapeWireLen(m) {
		return fmt.Errorf("realtrain: tape payload %d bytes, want %d", len(buf), tapeWireLen(m))
	}
	tp.pos = int(binary.LittleEndian.Uint32(buf[0:4]))
	tp.idx = int(binary.LittleEndian.Uint32(buf[4:8]))
	tp.loss = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16]))
	o := 16
	for _, arr := range [][]float32{tp.h, tp.x, tp.dz, tp.dh, tp.dx} {
		for i := range arr {
			arr[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[o : o+4]))
			o += 4
		}
	}
	return nil
}
