package realtrain

import (
	"math"

	"teco/internal/checkpoint"
	"teco/internal/parallel"
	"teco/internal/tensor"
)

// fusedScratch holds the per-chunk slots the fused ADAM epilogue writes:
// the post-update NaN/Inf first hits, the zero-initialized tensor CRC
// chunks, and the sampled byte-change distributions. One slot per
// fixed-quantum parallel chunk, indexed by the chunk index the epilogue
// receives; everything is preallocated once per trainer, so the steady-state
// step makes no allocations. The slots are combined in ascending chunk
// order after the pass — min for first-hit indices, CRC chaining via
// checkpoint.CombineChecksum, integer adds for distributions — all exact,
// so results are bit-identical to the standalone passes at every worker
// count.
type fusedScratch struct {
	n  int // tensor length the chunk layout was sized for
	nc int

	// Per-step inputs the epilogue reads, set by Step before the fused
	// pass. They live here (rather than in a fresh closure each step) so
	// the steady-state step allocates nothing: epi is built once and
	// reused.
	sdc, sample bool
	am, av      []float32
	epi         func(c, lo, hi int)

	nfMaster              []int
	crcMaster, crcM, crcV []uint16
	pDist, gDist          []tensor.Distribution
}

// fused returns the trainer's fused-epilogue scratch, sized for n words.
func (t *Trainer) fused(n int) *fusedScratch {
	if t.fs == nil || t.fs.n != n {
		nc := parallel.Chunks(n)
		fs := &fusedScratch{
			n:         n,
			nc:        nc,
			nfMaster:  make([]int, nc),
			crcMaster: make([]uint16, nc),
			crcM:      make([]uint16, nc),
			crcV:      make([]uint16, nc),
			pDist:     make([]tensor.Distribution, nc),
			gDist:     make([]tensor.Distribution, nc),
		}
		fs.epi = func(c, lo, hi int) { t.fusedEpilogue(fs, c, lo, hi) }
		t.fs = fs
	}
	return t.fs
}

// fusedEpilogue is the per-chunk tail of the fused ADAM pass: the
// post-update NaN/Inf guard, the zero-initialized tensor CRC chunks, the
// sampled byte-change distributions (observed before the baselines are
// clobbered), and the previous-value copies — each of which used to be a
// standalone whole-tensor walk.
func (t *Trainer) fusedEpilogue(fs *fusedScratch, c, lo, hi int) {
	if fs.sdc {
		fs.nfMaster[c] = scanNonFinite(t.master, lo, hi)
		fs.crcMaster[c] = checkpoint.ChecksumChunk(t.master[lo:hi])
		fs.crcM[c] = checkpoint.ChecksumChunk(fs.am[lo:hi])
		fs.crcV[c] = checkpoint.ChecksumChunk(fs.av[lo:hi])
	}
	if fs.sample {
		var pd, gd tensor.Distribution
		for i := lo; i < hi; i++ {
			pd.Observe(t.prevMaster[i], t.master[i])
		}
		for i := lo; i < hi; i++ {
			gd.Observe(t.prevGrads[i], t.grads[i])
		}
		fs.pDist[c] = pd
		fs.gDist[c] = gd
	}
	copy(t.prevMaster[lo:hi], t.master[lo:hi])
	copy(t.prevGrads[lo:hi], t.grads[lo:hi])
}

// firstNonFinite folds the per-chunk first-hit slots: ascending chunk
// order, so the result is the lowest offending index overall — exactly
// optim.FirstNonFiniteWorkers' answer.
func (fs *fusedScratch) firstNonFinite() int {
	for _, hit := range fs.nfMaster {
		if hit >= 0 {
			return hit
		}
	}
	return -1
}

// foldCRC chains zero-initialized chunk CRCs into the full-tensor
// checksum, bit-identical to checkpoint.Checksum over the whole vector.
func (fs *fusedScratch) foldCRC(parts []uint16) uint16 {
	crc := uint16(0xFFFF)
	for c, part := range parts {
		lo, hi := parallel.ChunkBounds(c, fs.n)
		crc = checkpoint.CombineChecksum(crc, part, 4*(hi-lo))
	}
	return crc
}

// foldDist sums per-chunk distributions in chunk order (integer adds) —
// the same combine dba.ScanChanged performs.
func foldDist(parts []tensor.Distribution) tensor.Distribution {
	var total tensor.Distribution
	for i := range parts {
		total.Add(parts[i])
	}
	return total
}

// scanNonFinite returns the first NaN/Inf index in x[lo:hi) (absolute), or
// -1 — the chunk-local body of the post-ADAM master guard.
func scanNonFinite(x []float32, lo, hi int) int {
	for i := lo; i < hi; i++ {
		f := float64(x[i])
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return i
		}
	}
	return -1
}
