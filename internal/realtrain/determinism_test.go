package realtrain

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// determinismConfigs is the table of trainer shapes the bit-identity
// harness covers: every hot path (ADAM, DBA merge + verify, FP16 rounding,
// byte-change scan, SDC CRC guards) and both proxy architectures.
func determinismConfigs(seed int64) []Config {
	base := Config{
		Steps: 40, PreSteps: 30, Hidden: 32, Seed: seed, SampleEvery: 5,
	}
	plain := base
	dbaOn := base
	dbaOn.DBA = true
	dbaOn.ActAfterSteps = 10
	fp16 := dbaOn
	fp16.FP16Compute = true
	guarded := dbaOn
	guarded.SDCChecks = true
	attn := base
	attn.Arch = "attention"
	attn.DBA = true
	attn.ActAfterSteps = 15
	return []Config{plain, dbaOn, fp16, guarded, attn}
}

func mustRunTrainer(t *testing.T, cfg Config) (*Trainer, Result) {
	t.Helper()
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return tr, tr.Result()
}

// requireBitEqual compares two float32 tensors bit-wise (NaN-safe).
func requireBitEqual(t *testing.T, label string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s: word %d differs: %08x vs %08x",
				label, i, math.Float32bits(a[i]), math.Float32bits(b[i]))
		}
	}
}

// requireSameRun asserts two finished trainers are bit-identical in every
// observable: parameters, moments, loss trajectory, and the final Result
// (modulo the Workers scheduling knob, which is not a numeric input).
func requireSameRun(t *testing.T, label string, ref, got *Trainer, refRes, gotRes Result) {
	t.Helper()
	requireBitEqual(t, label+"/master", ref.MasterParams(), got.MasterParams())
	requireBitEqual(t, label+"/compute", ref.ComputeParams(), got.ComputeParams())
	rm, rv := ref.Moments()
	gm, gv := got.Moments()
	requireBitEqual(t, label+"/adam.m", rm, gm)
	requireBitEqual(t, label+"/adam.v", rv, gv)
	if !reflect.DeepEqual(ref.Samples(), got.Samples()) {
		t.Fatalf("%s: sample trajectories diverge", label)
	}
	gotRes.Config.Workers = refRes.Config.Workers
	if !reflect.DeepEqual(refRes, gotRes) {
		t.Fatalf("%s: results diverge:\n ref %+v\n got %+v", label, refRes, gotRes)
	}
}

// TestTrainerParallelBitIdentical is the core determinism harness: for
// every config shape and seed, a run at workers 2 and 8 must be
// bit-identical to the serial run — tensors, moments, samples, Result.
func TestTrainerParallelBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		for ci, base := range determinismConfigs(seed) {
			serial := base
			serial.Workers = 1
			refTr, refRes := mustRunTrainer(t, serial)
			for _, workers := range []int{2, 8} {
				cfg := base
				cfg.Workers = workers
				tr, res := mustRunTrainer(t, cfg)
				label := fmt.Sprintf("seed=%d cfg=%d workers=%d", seed, ci, workers)
				requireSameRun(t, label, refTr, tr, refRes, res)
			}
		}
	}
}

// TestPreStateSharingBitIdentical proves the memoization building block:
// fine-tuning from a shared PreState is bit-identical to a run whose
// pre-training executed inline, including across worker counts.
func TestPreStateSharingBitIdentical(t *testing.T) {
	base := Config{Steps: 30, PreSteps: 25, Hidden: 32, Seed: 9, SampleEvery: 5, DBA: true, ActAfterSteps: 8}
	refTr, refRes := mustRunTrainer(t, base)

	pre, err := Pretrain(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		cfg := base
		cfg.Workers = workers
		tr, err := NewTrainerFromPre(cfg, pre)
		if err != nil {
			t.Fatal(err)
		}
		for !tr.Done() {
			if err := tr.Step(); err != nil {
				t.Fatal(err)
			}
		}
		requireSameRun(t, fmt.Sprintf("prestate workers=%d", workers), refTr, tr, refRes, tr.Result())
	}

	// A pre-state must refuse a config whose pre-phase differs.
	bad := base
	bad.PreSteps = 26
	if _, err := NewTrainerFromPre(bad, pre); err == nil {
		t.Fatal("pre-state accepted a mismatched pre-phase config")
	}
}

// TestSnapshotRestoreAcrossWorkerCounts checks the crash/restore story
// under the parallel trainer: a snapshot written by a parallel run restores
// into a serial run (and vice versa) and finishes bit-identical to an
// uninterrupted serial run.
func TestSnapshotRestoreAcrossWorkerCounts(t *testing.T) {
	base := Config{Steps: 30, PreSteps: 20, Hidden: 32, Seed: 5, SampleEvery: 5,
		DBA: true, ActAfterSteps: 6, SDCChecks: true}
	refTr, refRes := mustRunTrainer(t, base)

	for _, wc := range []struct{ snapW, resumeW int }{{8, 1}, {1, 8}, {8, 2}} {
		cfg := base
		cfg.Workers = wc.snapW
		tr, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for tr.StepCount() < 13 {
			if err := tr.Step(); err != nil {
				t.Fatal(err)
			}
		}
		snap := tr.Snapshot()

		resume := base
		resume.Workers = wc.resumeW
		rt, err := NewTrainerFromSnapshot(resume, snap)
		if err != nil {
			t.Fatalf("snapW=%d resumeW=%d: %v", wc.snapW, wc.resumeW, err)
		}
		for !rt.Done() {
			if err := rt.Step(); err != nil {
				t.Fatal(err)
			}
		}
		label := fmt.Sprintf("snapW=%d resumeW=%d", wc.snapW, wc.resumeW)
		requireSameRun(t, label, refTr, rt, refRes, rt.Result())
	}
}
