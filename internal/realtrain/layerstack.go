package realtrain

import (
	"math"
	"math/rand"
)

// LayerStack is the real N-layer transformer proxy: the single-head
// attention block and the MLP block that already exist as standalone
// classifiers, composed into an explicit residual layer sequence —
//
//	tokens -> Emb -> N x [ x + attn(x) ; x + mlp(x) ] -> mean-pool -> logits
//
// — so the repo finally trains the workload shape the paper's per-layer
// offload scheduling targets. The whole model stays one flat FP32 vector
// for the DBA machinery, but unlike the single-block proxies its parameter
// vector has an explicit layer-granular segmentation (Segments) that the
// offload scheduler stages through the fast tier one layer at a time. The
// backward pass is hand-derived and validated against finite differences
// (layerstack_test.go).
type LayerStack struct {
	Vocab, Dim, Classes, Layers int
	Params                      []float32
}

// NewLayerStack builds an n-layer stack with scaled random initialization.
// The per-block output projections (Wv's successor path and the MLP's
// second matrix) are damped by 1/sqrt(2n), the GPT-2 residual-scaling rule,
// so activations stay bounded at any depth.
func NewLayerStack(vocab, dim, classes, layers int, seed int64) *LayerStack {
	if layers < 1 {
		layers = 1
	}
	m := &LayerStack{Vocab: vocab, Dim: dim, Classes: classes, Layers: layers}
	m.Params = make([]float32, m.NumParams())
	rng := rand.New(rand.NewSource(seed))
	emb := m.emb(m.Params)
	for i := range emb {
		emb[i] = 0.5 * float32(rng.NormFloat64())
	}
	s := float32(math.Sqrt(1 / float64(dim)))
	s1 := float32(math.Sqrt(2 / float64(dim)))
	damp := s / float32(math.Sqrt(2*float64(layers)))
	for l := 0; l < layers; l++ {
		wq, wk, wv, wf1, wf2 := m.block(m.Params, l)
		for _, w := range [][]float32{wq, wk} {
			for i := range w {
				w[i] = s * float32(rng.NormFloat64())
			}
		}
		for i := range wv {
			wv[i] = damp * float32(rng.NormFloat64())
		}
		for i := range wf1 {
			wf1[i] = s1 * float32(rng.NormFloat64())
		}
		for i := range wf2 {
			wf2[i] = damp * float32(rng.NormFloat64())
		}
	}
	wo, _ := m.head(m.Params)
	for i := range wo {
		wo[i] = s * float32(rng.NormFloat64())
	}
	return m
}

// blockParams is the flat parameter count of one layer:
// Wq + Wk + Wv (attention) and Wf1 + Wf2 (the dim->dim MLP sublayer).
func (m *LayerStack) blockParams() int { return 5 * m.Dim * m.Dim }

// NumParams returns the flat parameter count:
// Emb + N blocks + classifier head.
func (m *LayerStack) NumParams() int {
	return m.Vocab*m.Dim + m.Layers*m.blockParams() + m.Dim*m.Classes + m.Classes
}

// Parameters returns the stack's flat parameter vector.
func (m *LayerStack) Parameters() []float32 { return m.Params }

func (m *LayerStack) emb(p []float32) []float32 { return p[:m.Vocab*m.Dim] }

// block slices layer l's five weight matrices out of a flat vector.
func (m *LayerStack) block(p []float32, l int) (wq, wk, wv, wf1, wf2 []float32) {
	d := m.Dim
	o := m.Vocab*d + l*m.blockParams()
	wq = p[o : o+d*d]
	o += d * d
	wk = p[o : o+d*d]
	o += d * d
	wv = p[o : o+d*d]
	o += d * d
	wf1 = p[o : o+d*d]
	o += d * d
	wf2 = p[o : o+d*d]
	return
}

func (m *LayerStack) head(p []float32) (wo, bo []float32) {
	o := m.Vocab*m.Dim + m.Layers*m.blockParams()
	wo = p[o : o+m.Dim*m.Classes]
	o += m.Dim * m.Classes
	bo = p[o : o+m.Classes]
	return
}

// Segments returns the layer-granular segmentation of the flat parameter
// vector: the embedding table, one segment per transformer block, and the
// classifier head. Segments tile [0, NumParams) exactly (asserted by the
// scheduler's residency invariants), which is what lets the offload
// scheduler move layers independently while per-segment merges stay
// bit-identical to the whole-vector transfer.
func (m *LayerStack) Segments() []Segment {
	segs := make([]Segment, 0, m.Layers+2)
	o := m.Vocab * m.Dim
	segs = append(segs, Segment{Name: "emb", Lo: 0, Hi: o})
	for l := 0; l < m.Layers; l++ {
		segs = append(segs, Segment{Name: "layer" + itoa(l), Lo: o, Hi: o + m.blockParams()})
		o += m.blockParams()
	}
	segs = append(segs, Segment{Name: "head", Lo: o, Hi: m.NumParams()})
	return segs
}

// ActivationWordsPerLayer estimates the FP32 activation words one block
// keeps for backward on a T-token example: six T x Dim tensors
// (xin/q/k/v/xa/f) plus the T x T attention rows. The scheduler charges
// this per (example, layer) when accounting activation traffic.
func (m *LayerStack) ActivationWordsPerLayer(t int) int {
	return 6*t*m.Dim + t*t
}

// itoa is strconv.Itoa for the small non-negative ints of segment names,
// kept local to avoid an import for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// stackBlockState keeps one block's forward activations for backward.
type stackBlockState struct {
	xin     [][]float32 // T x D input to the block
	q, k, v [][]float32 // T x D projections
	attn    [][]float32 // T x T softmax rows
	xa      [][]float32 // T x D xin + attention output (MLP sublayer input)
	f       [][]float32 // T x D post-ReLU MLP hidden
}

// stackState is one example's full forward trace.
type stackState struct {
	blocks []stackBlockState
	xout   [][]float32 // T x D output of the last block
	pooled []float32
	probs  []float32
}

// forward runs the stack on one token sequence, recording every block's
// activations.
func (m *LayerStack) forward(params []float32, tok []int) *stackState {
	d := m.Dim
	T := len(tok)
	st := &stackState{blocks: make([]stackBlockState, m.Layers), pooled: make([]float32, d)}
	emb := m.emb(params)
	x := matRows(T, d)
	for t, id := range tok {
		copy(x[t], emb[id*d:(id+1)*d])
	}
	scale := float32(1 / math.Sqrt(float64(d)))
	for l := 0; l < m.Layers; l++ {
		wq, wk, wv, wf1, wf2 := m.block(params, l)
		bs := &st.blocks[l]
		bs.xin = x
		bs.q, bs.k, bs.v = matRows(T, d), matRows(T, d), matRows(T, d)
		bs.attn = matRows(T, T)
		bs.xa, bs.f = matRows(T, d), matRows(T, d)
		proj := func(dst [][]float32, w []float32) {
			for t := 0; t < T; t++ {
				for j := 0; j < d; j++ {
					var s float32
					for i := 0; i < d; i++ {
						s += x[t][i] * w[i*d+j]
					}
					dst[t][j] = s
				}
			}
		}
		proj(bs.q, wq)
		proj(bs.k, wk)
		proj(bs.v, wv)
		for t := 0; t < T; t++ {
			row := bs.attn[t]
			for u := 0; u < T; u++ {
				var s float32
				for i := 0; i < d; i++ {
					s += bs.q[t][i] * bs.k[u][i]
				}
				row[u] = s * scale
			}
			copy(row, softmax(row))
		}
		// Residual 1: xa = xin + attn(xin).
		for t := 0; t < T; t++ {
			for j := 0; j < d; j++ {
				var s float32
				for u := 0; u < T; u++ {
					s += bs.attn[t][u] * bs.v[u][j]
				}
				bs.xa[t][j] = x[t][j] + s
			}
		}
		// MLP sublayer: f = ReLU(xa Wf1), residual 2: xout = xa + f Wf2.
		for t := 0; t < T; t++ {
			for j := 0; j < d; j++ {
				var s float32
				for i := 0; i < d; i++ {
					s += bs.xa[t][i] * wf1[i*d+j]
				}
				if s < 0 {
					s = 0
				}
				bs.f[t][j] = s
			}
		}
		next := matRows(T, d)
		for t := 0; t < T; t++ {
			for j := 0; j < d; j++ {
				var s float32
				for i := 0; i < d; i++ {
					s += bs.f[t][i] * wf2[i*d+j]
				}
				next[t][j] = bs.xa[t][j] + s
			}
		}
		x = next
	}
	st.xout = x
	wo, bo := m.head(params)
	for t := 0; t < T; t++ {
		for j := 0; j < d; j++ {
			st.pooled[j] += x[t][j] / float32(T)
		}
	}
	logits := make([]float32, m.Classes)
	for c := 0; c < m.Classes; c++ {
		s := bo[c]
		for j := 0; j < d; j++ {
			s += st.pooled[j] * wo[j*m.Classes+c]
		}
		logits[c] = s
	}
	st.probs = softmax(logits)
	return st
}

// Forward returns class probabilities for one example.
func (m *LayerStack) Forward(params []float32, tok []int) []float32 {
	return m.forward(params, tok).probs
}

// backBlock backpropagates one block: dX is the gradient at the block's
// output; the return value is the gradient at its input. Weight gradients
// accumulate into grads.
func (m *LayerStack) backBlock(params, grads []float32, l int, bs *stackBlockState, dX [][]float32) [][]float32 {
	d := m.Dim
	T := len(dX)
	wq, wk, wv, wf1, wf2 := m.block(params, l)
	gwq, gwk, gwv, gwf1, gwf2 := m.block(grads, l)
	scale := float32(1 / math.Sqrt(float64(d)))

	// Residual 2: xout = xa + f Wf2 — dX reaches both xa and the MLP path.
	dXa := matRows(T, d)
	dF := matRows(T, d)
	for t := 0; t < T; t++ {
		copy(dXa[t], dX[t])
		for i := 0; i < d; i++ {
			fti := bs.f[t][i]
			var acc float32
			for j := 0; j < d; j++ {
				gwf2[i*d+j] += fti * dX[t][j]
				acc += dX[t][j] * wf2[i*d+j]
			}
			dF[t][i] = acc
		}
	}
	// ReLU gate, then f = xa Wf1.
	for t := 0; t < T; t++ {
		for j := 0; j < d; j++ {
			if bs.f[t][j] <= 0 {
				dF[t][j] = 0
			}
		}
	}
	for t := 0; t < T; t++ {
		for i := 0; i < d; i++ {
			xti := bs.xa[t][i]
			var acc float32
			for j := 0; j < d; j++ {
				gwf1[i*d+j] += xti * dF[t][j]
				acc += dF[t][j] * wf1[i*d+j]
			}
			dXa[t][i] += acc
		}
	}

	// Residual 1: xa = xin + A V — dXa reaches both xin and attention.
	dXin := matRows(T, d)
	for t := 0; t < T; t++ {
		copy(dXin[t], dXa[t])
	}
	dA := matRows(T, T)
	dV := matRows(T, d)
	for t := 0; t < T; t++ {
		for u := 0; u < T; u++ {
			var s float32
			for j := 0; j < d; j++ {
				s += dXa[t][j] * bs.v[u][j]
				dV[u][j] += bs.attn[t][u] * dXa[t][j]
			}
			dA[t][u] = s
		}
	}
	// Softmax backward per row, then Q/K.
	dQ := matRows(T, d)
	dK := matRows(T, d)
	for t := 0; t < T; t++ {
		var dot float32
		for u := 0; u < T; u++ {
			dot += dA[t][u] * bs.attn[t][u]
		}
		for u := 0; u < T; u++ {
			ds := bs.attn[t][u] * (dA[t][u] - dot) * scale
			for i := 0; i < d; i++ {
				dQ[t][i] += ds * bs.k[u][i]
				dK[u][i] += ds * bs.q[t][i]
			}
		}
	}
	// Projections: P = X W  =>  dW += X^T dP, dX += dP W^T.
	backProj := func(dP [][]float32, w, gw []float32) {
		for t := 0; t < T; t++ {
			for i := 0; i < d; i++ {
				xti := bs.xin[t][i]
				var acc float32
				for j := 0; j < d; j++ {
					gw[i*d+j] += xti * dP[t][j]
					acc += dP[t][j] * w[i*d+j]
				}
				dXin[t][i] += acc
			}
		}
	}
	backProj(dQ, wq, gwq)
	backProj(dK, wk, gwk)
	backProj(dV, wv, gwv)
	return dXin
}

// LossAndGrad computes mean cross-entropy over a minibatch and the full
// gradient into grads (zeroed first). Returns the loss.
func (m *LayerStack) LossAndGrad(params []float32, ds *Dataset, batch []int, grads []float32) float64 {
	for i := range grads {
		grads[i] = 0
	}
	d := m.Dim
	wo, _ := m.head(params)
	gemb := m.emb(grads)
	gwo, gbo := m.head(grads)
	var loss float64
	inv := float32(1.0 / float64(len(batch)))

	for _, idx := range batch {
		tok := ds.TrainTok[idx]
		y := ds.TrainY[idx]
		T := len(tok)
		st := m.forward(params, tok)
		p := float64(st.probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)

		// Classifier backward.
		dPooled := make([]float32, d)
		for c := 0; c < m.Classes; c++ {
			dz := st.probs[c] * inv
			if c == y {
				dz -= inv
			}
			gbo[c] += dz
			for j := 0; j < d; j++ {
				gwo[j*m.Classes+c] += st.pooled[j] * dz
				dPooled[j] += wo[j*m.Classes+c] * dz
			}
		}
		// Mean pool backward.
		dX := matRows(T, d)
		for t := 0; t < T; t++ {
			for j := 0; j < d; j++ {
				dX[t][j] = dPooled[j] / float32(T)
			}
		}
		// Blocks in reverse — the backward layer order the per-layer
		// offload scheduler replays.
		for l := m.Layers - 1; l >= 0; l-- {
			dX = m.backBlock(params, grads, l, &st.blocks[l], dX)
		}
		// Embedding rows.
		for t, id := range tok {
			base := id * d
			for i := 0; i < d; i++ {
				gemb[base+i] += dX[t][i]
			}
		}
	}
	return loss / float64(len(batch))
}

// Accuracy evaluates top-1 accuracy on the test split.
func (m *LayerStack) Accuracy(params []float32, ds *Dataset) float64 {
	correct := 0
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		best := 0
		for c := range probs {
			if probs[c] > probs[best] {
				best = c
			}
		}
		if best == ds.TestY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.TestTok))
}

// MeanLoss evaluates mean cross-entropy on the test split.
func (m *LayerStack) MeanLoss(params []float32, ds *Dataset) float64 {
	var loss float64
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		p := float64(probs[ds.TestY[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
	}
	return loss / float64(len(ds.TestTok))
}
