package realtrain

import (
	"math"
	"math/rand"

	"teco/internal/kernels"
)

// LayerStack is the real N-layer transformer proxy: the single-head
// attention block and the MLP block that already exist as standalone
// classifiers, composed into an explicit residual layer sequence —
//
//	tokens -> Emb -> N x [ x + attn(x) ; x + mlp(x) ] -> mean-pool -> logits
//
// — so the repo finally trains the workload shape the paper's per-layer
// offload scheduling targets. The whole model stays one flat FP32 vector
// for the DBA machinery, but unlike the single-block proxies its parameter
// vector has an explicit layer-granular segmentation (Segments) that the
// offload scheduler stages through the fast tier one layer at a time. The
// backward pass is hand-derived and validated against finite differences
// (layerstack_test.go).
//
// All dense products route through the internal/kernels blocked primitives;
// residual sums are computed into a zeroed temp and folded with one final
// addition, so every FP32 result keeps the original naive loop's rounding
// chain bit for bit. Like the other proxies a LayerStack owns scratch
// storage and is not safe for concurrent use.
type LayerStack struct {
	Vocab, Dim, Classes, Layers int
	Params                      []float32

	sc *stackScratch
}

// stackScratch is the per-instance reusable storage: a bump arena Reset at
// the top of every forward pass plus the activation trace re-carved from it.
type stackScratch struct {
	arena kernels.Arena
	st    stackState
}

func (m *LayerStack) scratch() *stackScratch {
	if m.sc == nil {
		m.sc = &stackScratch{}
	}
	if cap(m.sc.st.blocks) < m.Layers {
		m.sc.st.blocks = make([]stackBlockState, m.Layers)
	}
	m.sc.st.blocks = m.sc.st.blocks[:m.Layers]
	return m.sc
}

// NewLayerStack builds an n-layer stack with scaled random initialization.
// The per-block output projections (Wv's successor path and the MLP's
// second matrix) are damped by 1/sqrt(2n), the GPT-2 residual-scaling rule,
// so activations stay bounded at any depth.
func NewLayerStack(vocab, dim, classes, layers int, seed int64) *LayerStack {
	if layers < 1 {
		layers = 1
	}
	m := &LayerStack{Vocab: vocab, Dim: dim, Classes: classes, Layers: layers}
	m.Params = make([]float32, m.NumParams())
	rng := rand.New(rand.NewSource(seed))
	emb := m.emb(m.Params)
	for i := range emb {
		emb[i] = 0.5 * float32(rng.NormFloat64())
	}
	s := float32(math.Sqrt(1 / float64(dim)))
	s1 := float32(math.Sqrt(2 / float64(dim)))
	damp := s / float32(math.Sqrt(2*float64(layers)))
	for l := 0; l < layers; l++ {
		wq, wk, wv, wf1, wf2 := m.block(m.Params, l)
		for _, w := range [][]float32{wq, wk} {
			for i := range w {
				w[i] = s * float32(rng.NormFloat64())
			}
		}
		for i := range wv {
			wv[i] = damp * float32(rng.NormFloat64())
		}
		for i := range wf1 {
			wf1[i] = s1 * float32(rng.NormFloat64())
		}
		for i := range wf2 {
			wf2[i] = damp * float32(rng.NormFloat64())
		}
	}
	wo, _ := m.head(m.Params)
	for i := range wo {
		wo[i] = s * float32(rng.NormFloat64())
	}
	return m
}

// blockParams is the flat parameter count of one layer:
// Wq + Wk + Wv (attention) and Wf1 + Wf2 (the dim->dim MLP sublayer).
func (m *LayerStack) blockParams() int { return 5 * m.Dim * m.Dim }

// NumParams returns the flat parameter count:
// Emb + N blocks + classifier head.
func (m *LayerStack) NumParams() int {
	return m.Vocab*m.Dim + m.Layers*m.blockParams() + m.Dim*m.Classes + m.Classes
}

// Parameters returns the stack's flat parameter vector.
func (m *LayerStack) Parameters() []float32 { return m.Params }

func (m *LayerStack) emb(p []float32) []float32 { return p[:m.Vocab*m.Dim] }

// block slices layer l's five weight matrices out of a flat vector.
func (m *LayerStack) block(p []float32, l int) (wq, wk, wv, wf1, wf2 []float32) {
	d := m.Dim
	o := m.Vocab*d + l*m.blockParams()
	wq = p[o : o+d*d]
	o += d * d
	wk = p[o : o+d*d]
	o += d * d
	wv = p[o : o+d*d]
	o += d * d
	wf1 = p[o : o+d*d]
	o += d * d
	wf2 = p[o : o+d*d]
	return
}

func (m *LayerStack) head(p []float32) (wo, bo []float32) {
	o := m.Vocab*m.Dim + m.Layers*m.blockParams()
	wo = p[o : o+m.Dim*m.Classes]
	o += m.Dim * m.Classes
	bo = p[o : o+m.Classes]
	return
}

// Segments returns the layer-granular segmentation of the flat parameter
// vector: the embedding table, one segment per transformer block, and the
// classifier head. Segments tile [0, NumParams) exactly (asserted by the
// scheduler's residency invariants), which is what lets the offload
// scheduler move layers independently while per-segment merges stay
// bit-identical to the whole-vector transfer.
func (m *LayerStack) Segments() []Segment {
	segs := make([]Segment, 0, m.Layers+2)
	o := m.Vocab * m.Dim
	segs = append(segs, Segment{Name: "emb", Lo: 0, Hi: o})
	for l := 0; l < m.Layers; l++ {
		segs = append(segs, Segment{Name: "layer" + itoa(l), Lo: o, Hi: o + m.blockParams()})
		o += m.blockParams()
	}
	segs = append(segs, Segment{Name: "head", Lo: o, Hi: m.NumParams()})
	return segs
}

// ActivationWordsPerLayer estimates the FP32 activation words one block
// keeps for backward on a T-token example: six T x Dim tensors
// (xin/q/k/v/xa/f) plus the T x T attention rows. The scheduler charges
// this per (example, layer) when accounting activation traffic.
func (m *LayerStack) ActivationWordsPerLayer(t int) int {
	return 6*t*m.Dim + t*t
}

// itoa is strconv.Itoa for the small non-negative ints of segment names,
// kept local to avoid an import for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// stackBlockState keeps one block's forward activations for backward.
// Matrices are arena row views; the *F slices are flat row-major backings
// for the row-dot kernels.
type stackBlockState struct {
	xin     [][]float32 // T x D input to the block
	q, k, v [][]float32 // T x D projections
	kF, vF  []float32   // flat backings of k, v
	attn    [][]float32 // T x T softmax rows
	xa      [][]float32 // T x D xin + attention output (MLP sublayer input)
	f       [][]float32 // T x D post-ReLU MLP hidden
}

// stackState is one example's full forward trace.
type stackState struct {
	blocks []stackBlockState
	xout   [][]float32 // T x D output of the last block
	pooled []float32
	probs  []float32
}

// forward runs the stack on one token sequence, recording every block's
// activations. It Resets the arena, so the trace (and any backward temps
// carved after it) lives exactly until the next forward on this instance.
func (m *LayerStack) forward(params []float32, tok []int) *stackState {
	d := m.Dim
	T := len(tok)
	sc := m.scratch()
	sc.arena.Reset()
	st := &sc.st
	st.pooled = sc.arena.Alloc(d)
	emb := m.emb(params)
	x := sc.arena.Rows(T, d)
	for t, id := range tok {
		copy(x[t], emb[id*d:(id+1)*d])
	}
	scale := float32(1 / math.Sqrt(float64(d)))
	for l := 0; l < m.Layers; l++ {
		wq, wk, wv, wf1, wf2 := m.block(params, l)
		bs := &st.blocks[l]
		bs.xin = x
		_, bs.q = sc.arena.RowsFlat(T, d)
		bs.kF, bs.k = sc.arena.RowsFlat(T, d)
		bs.vF, bs.v = sc.arena.RowsFlat(T, d)
		bs.attn = sc.arena.Rows(T, T)
		bs.xa = sc.arena.Rows(T, d)
		bs.f = sc.arena.Rows(T, d)
		for t := 0; t < T; t++ {
			kernels.AddMatVec(bs.q[t], x[t], wq, d, d)
			kernels.AddMatVec(bs.k[t], x[t], wk, d, d)
			kernels.AddMatVec(bs.v[t], x[t], wv, d, d)
		}
		for t := 0; t < T; t++ {
			row := bs.attn[t]
			kernels.DotRowsInto(row, bs.q[t], bs.kF, T, d)
			for u := 0; u < T; u++ {
				row[u] *= scale
			}
			softmaxInto(row, row)
		}
		// Residual 1: xa = xin + attn(xin). The A·V product accumulates in
		// the zeroed xa row first, then the residual folds in with one
		// addition per element — the same chain as the naive s-then-add.
		for t := 0; t < T; t++ {
			kernels.AddMatVec(bs.xa[t], bs.attn[t], bs.vF, T, d)
			for j := 0; j < d; j++ {
				bs.xa[t][j] = x[t][j] + bs.xa[t][j]
			}
		}
		// MLP sublayer: f = ReLU(xa Wf1), residual 2: xout = xa + f Wf2.
		for t := 0; t < T; t++ {
			kernels.AddMatVec(bs.f[t], bs.xa[t], wf1, d, d)
			row := bs.f[t]
			for j := 0; j < d; j++ {
				if row[j] < 0 {
					row[j] = 0
				}
			}
		}
		_, next := sc.arena.RowsFlat(T, d)
		for t := 0; t < T; t++ {
			kernels.AddMatVec(next[t], bs.f[t], wf2, d, d)
			for j := 0; j < d; j++ {
				next[t][j] = bs.xa[t][j] + next[t][j]
			}
		}
		x = next
	}
	st.xout = x
	wo, bo := m.head(params)
	for t := 0; t < T; t++ {
		for j := 0; j < d; j++ {
			st.pooled[j] += x[t][j] / float32(T)
		}
	}
	logits := sc.arena.Alloc(m.Classes)
	kernels.MatVecInto(logits, bo, st.pooled, wo, d, m.Classes)
	st.probs = softmaxInto(sc.arena.Alloc(m.Classes), logits)
	return st
}

// Forward returns class probabilities for one example. The returned slice
// aliases the model's scratch arena and is valid until the next call on
// this instance.
func (m *LayerStack) Forward(params []float32, tok []int) []float32 {
	return m.forward(params, tok).probs
}

// backBlock backpropagates one block: dX is the gradient at the block's
// output; the return value is the gradient at its input. Weight gradients
// accumulate into grads. Temps are carved from the scratch arena (valid
// until the next forward).
func (m *LayerStack) backBlock(params, grads []float32, l int, bs *stackBlockState, dX [][]float32) [][]float32 {
	d := m.Dim
	T := len(dX)
	wq, wk, wv, wf1, wf2 := m.block(params, l)
	gwq, gwk, gwv, gwf1, gwf2 := m.block(grads, l)
	scale := float32(1 / math.Sqrt(float64(d)))
	arena := &m.sc.arena

	// Residual 2: xout = xa + f Wf2 — dX reaches both xa and the MLP path.
	dXa := arena.Rows(T, d)
	dF := arena.Rows(T, d)
	for t := 0; t < T; t++ {
		copy(dXa[t], dX[t])
		kernels.BackProjSet(gwf2, dF[t], bs.f[t], dX[t], wf2, d, d)
	}
	// ReLU gate, then f = xa Wf1.
	for t := 0; t < T; t++ {
		for j := 0; j < d; j++ {
			if bs.f[t][j] <= 0 {
				dF[t][j] = 0
			}
		}
	}
	for t := 0; t < T; t++ {
		kernels.BackProjAdd(gwf1, dXa[t], bs.xa[t], dF[t], wf1, d, d)
	}

	// Residual 1: xa = xin + A V — dXa reaches both xin and attention.
	dXin := arena.Rows(T, d)
	for t := 0; t < T; t++ {
		copy(dXin[t], dXa[t])
	}
	dA := arena.Rows(T, T)
	dV := arena.Rows(T, d)
	for t := 0; t < T; t++ {
		kernels.DotRowsInto(dA[t], dXa[t], bs.vF, T, d)
		for u := 0; u < T; u++ {
			kernels.Axpy(dV[u], bs.attn[t][u], dXa[t])
		}
	}
	// Softmax backward per row, then Q/K.
	dQ := arena.Rows(T, d)
	dK := arena.Rows(T, d)
	for t := 0; t < T; t++ {
		var dot float32
		for u := 0; u < T; u++ {
			dot += dA[t][u] * bs.attn[t][u]
		}
		for u := 0; u < T; u++ {
			dsc := bs.attn[t][u] * (dA[t][u] - dot) * scale
			kernels.Axpy(dQ[t], dsc, bs.k[u])
			kernels.Axpy(dK[u], dsc, bs.q[t])
		}
	}
	// Projections: P = X W  =>  dW += X^T dP, dX += dP W^T.
	for _, bp := range [3]struct {
		dP [][]float32
		w  []float32
		gw []float32
	}{{dQ, wq, gwq}, {dK, wk, gwk}, {dV, wv, gwv}} {
		for t := 0; t < T; t++ {
			kernels.BackProjAdd(bp.gw, dXin[t], bs.xin[t], bp.dP[t], bp.w, d, d)
		}
	}
	return dXin
}

// LossAndGrad computes mean cross-entropy over a minibatch and the full
// gradient into grads (zeroed first). Returns the loss.
func (m *LayerStack) LossAndGrad(params []float32, ds *Dataset, batch []int, grads []float32) float64 {
	for i := range grads {
		grads[i] = 0
	}
	d := m.Dim
	wo, _ := m.head(params)
	gemb := m.emb(grads)
	gwo, gbo := m.head(grads)
	var loss float64
	inv := float32(1.0 / float64(len(batch)))

	for _, idx := range batch {
		tok := ds.TrainTok[idx]
		y := ds.TrainY[idx]
		T := len(tok)
		st := m.forward(params, tok)
		arena := &m.sc.arena
		p := float64(st.probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)

		// Classifier backward.
		dz := arena.Alloc(m.Classes)
		for c := 0; c < m.Classes; c++ {
			dzc := st.probs[c] * inv
			if c == y {
				dzc -= inv
			}
			dz[c] = dzc
			gbo[c] += dzc
		}
		dPooled := arena.Alloc(d)
		kernels.BackProjSet(gwo, dPooled, st.pooled, dz, wo, d, m.Classes)
		// Mean pool backward.
		dX := arena.Rows(T, d)
		for t := 0; t < T; t++ {
			for j := 0; j < d; j++ {
				dX[t][j] = dPooled[j] / float32(T)
			}
		}
		// Blocks in reverse — the backward layer order the per-layer
		// offload scheduler replays.
		for l := m.Layers - 1; l >= 0; l-- {
			dX = m.backBlock(params, grads, l, &st.blocks[l], dX)
		}
		// Embedding rows.
		for t, id := range tok {
			base := id * d
			for i := 0; i < d; i++ {
				gemb[base+i] += dX[t][i]
			}
		}
	}
	return loss / float64(len(batch))
}

// Accuracy evaluates top-1 accuracy on the test split.
func (m *LayerStack) Accuracy(params []float32, ds *Dataset) float64 {
	correct := 0
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		best := 0
		for c := range probs {
			if probs[c] > probs[best] {
				best = c
			}
		}
		if best == ds.TestY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.TestTok))
}

// MeanLoss evaluates mean cross-entropy on the test split.
func (m *LayerStack) MeanLoss(params []float32, ds *Dataset) float64 {
	var loss float64
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		p := float64(probs[ds.TestY[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
	}
	return loss / float64(len(ds.TestTok))
}
