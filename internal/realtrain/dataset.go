// Package realtrain runs real (not modelled) FP32 training: an
// embedding + MLP softmax classifier fine-tuned on a synthetic token task
// with a genuine ADAM optimizer, where the parameter path between the CPU
// master copy and the accelerator compute copy applies TECO's dirty-byte
// merge bit-exactly. It is the substrate for every accuracy/convergence
// experiment in the paper: Figure 2 (value-changed-byte distributions),
// Figure 10 (loss curves), Table V (final accuracy), and Figure 13
// (act_aft_steps sweep).
//
// The paper fine-tunes pre-trained HuggingFace transformers; we substitute
// a task with the same *numerical* structure — a pre-trained model nudged
// by small gradients, with a sparsely-updated embedding table (the source
// of the paper's "44.5% of parameters do not change values across two
// consecutive training steps") — because the DBA approximation acts on FP32
// byte patterns, not on model semantics (see DESIGN.md).
package realtrain

import (
	"math"
	"math/rand"
)

// Dataset is a synthetic token-classification task: each example is a bag
// of token ids whose label comes from a fixed random teacher over a hidden
// ground-truth embedding.
type Dataset struct {
	Vocab     int
	TokensPer int
	Dim       int
	Classes   int
	TrainTok  [][]int
	TrainY    []int
	TestTok   [][]int
	TestY     []int
}

// DatasetConfig sizes the synthetic task.
type DatasetConfig struct {
	Vocab     int // vocabulary size (default 512)
	TokensPer int // tokens per example (default 8)
	Dim       int // embedding dimension (default 32)
	Classes   int // label classes (default 8)
	Train     int // training examples (default 4096)
	Test      int // test examples (default 1024)
	Seed      int64
}

func (c DatasetConfig) withDefaults() DatasetConfig {
	if c.Vocab == 0 {
		c.Vocab = 4096
	}
	if c.TokensPer == 0 {
		c.TokensPer = 8
	}
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Classes == 0 {
		c.Classes = 8
	}
	if c.Train == 0 {
		c.Train = 8192
	}
	if c.Test == 0 {
		c.Test = 1024
	}
	return c
}

// NewDataset generates the task deterministically from cfg.Seed.
func NewDataset(cfg DatasetConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Hidden ground truth: an embedding per token and a linear teacher.
	truth := make([][]float32, cfg.Vocab)
	for v := range truth {
		truth[v] = make([]float32, cfg.Dim)
		for d := range truth[v] {
			truth[v][d] = float32(rng.NormFloat64())
		}
	}
	teacher := make([][]float32, cfg.Classes)
	for c := range teacher {
		teacher[c] = make([]float32, cfg.Dim)
		for d := range teacher[c] {
			teacher[c][d] = float32(rng.NormFloat64())
		}
	}
	// Zipf-like (log-uniform) token frequencies: low ids are common, the
	// long tail is rare — like real vocabulary usage, which is what
	// leaves a large share of embedding rows untouched across
	// consecutive steps (the paper's 44.5%% observation).
	logV := math.Log(float64(cfg.Vocab) + 1)
	drawTok := func() int {
		return int(math.Exp(rng.Float64()*logV)) - 1
	}
	gen := func(n int) ([][]int, []int) {
		toks := make([][]int, n)
		ys := make([]int, n)
		for i := 0; i < n; i++ {
			tok := make([]int, cfg.TokensPer)
			x := make([]float32, cfg.Dim)
			for j := range tok {
				tok[j] = drawTok()
				if tok[j] >= cfg.Vocab {
					tok[j] = cfg.Vocab - 1
				}
				for d := range x {
					x[d] += truth[tok[j]][d]
				}
			}
			best, bestV := 0, float32(-1e30)
			for c := range teacher {
				var s float32
				for d := range x {
					s += teacher[c][d] * x[d]
				}
				if s > bestV {
					best, bestV = c, s
				}
			}
			if rng.Float64() < 0.05 { // 5% label noise
				best = rng.Intn(cfg.Classes)
			}
			toks[i], ys[i] = tok, best
		}
		return toks, ys
	}
	ds := &Dataset{Vocab: cfg.Vocab, TokensPer: cfg.TokensPer, Dim: cfg.Dim, Classes: cfg.Classes}
	ds.TrainTok, ds.TrainY = gen(cfg.Train)
	ds.TestTok, ds.TestY = gen(cfg.Test)
	return ds
}

// Batch samples a minibatch of indices from the training set.
func (d *Dataset) Batch(rng *rand.Rand, size int) []int {
	return d.BatchInto(rng, nil, size)
}

// BatchInto is Batch appending into buf's spare capacity — the
// allocation-free form for the per-step training loop. The RNG draw
// sequence is identical to Batch's.
func (d *Dataset) BatchInto(rng *rand.Rand, buf []int, size int) []int {
	buf = buf[:0]
	for i := 0; i < size; i++ {
		buf = append(buf, rng.Intn(len(d.TrainTok)))
	}
	return buf
}
