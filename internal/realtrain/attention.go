package realtrain

import (
	"math"
	"math/rand"

	"teco/internal/kernels"
)

// Attention is a single-head self-attention classifier — the
// transformer-family counterpart of the MLP proxy, so the accuracy
// experiments can run on the same architecture class as the paper's
// workloads:
//
//	tokens -> Emb -> self-attention (softmax(QK^T/sqrt(D)) V) ->
//	mean-pool -> logits.
//
// The whole model is one flat FP32 vector for the DBA machinery, and the
// backward pass is hand-derived (validated against finite differences).
// All dense products route through the internal/kernels blocked primitives,
// whose fixed accumulation order keeps the results bit-identical to the
// original naive loops (see the kernels package doc).
type Attention struct {
	Vocab, Dim, Classes int
	Params              []float32

	// sc holds the model's scratch arena and activation state, so the
	// per-example hot loops run allocation-free in steady state. Because
	// of it an Attention is not safe for concurrent use — each trainer
	// owns its own instance. Slices returned by Forward (probs) alias the
	// arena and are valid until the next call on this instance.
	sc *attnScratch
}

// attnScratch is the per-instance reusable storage: a bump arena that is
// Reset at the top of every forward pass, plus the activation state whose
// slices are re-carved from the arena each example.
type attnScratch struct {
	arena kernels.Arena
	st    attnState
}

func (m *Attention) scratch() *attnScratch {
	if m.sc == nil {
		m.sc = &attnScratch{}
	}
	return m.sc
}

// NewAttention builds the model with scaled random initialization.
func NewAttention(vocab, dim, classes int, seed int64) *Attention {
	m := &Attention{Vocab: vocab, Dim: dim, Classes: classes}
	m.Params = make([]float32, m.NumParams())
	rng := rand.New(rand.NewSource(seed))
	emb, wq, wk, wv, wo, _ := m.views(m.Params)
	for i := range emb {
		emb[i] = 0.5 * float32(rng.NormFloat64())
	}
	s := float32(math.Sqrt(1 / float64(dim)))
	for _, w := range [][]float32{wq, wk, wv} {
		for i := range w {
			w[i] = s * float32(rng.NormFloat64())
		}
	}
	for i := range wo {
		wo[i] = s * float32(rng.NormFloat64())
	}
	return m
}

// NumParams returns the flat parameter count:
// Emb + Wq + Wk + Wv + Wout + bout.
func (m *Attention) NumParams() int {
	d := m.Dim
	return m.Vocab*d + 3*d*d + d*m.Classes + m.Classes
}

func (m *Attention) views(p []float32) (emb, wq, wk, wv, wo, bo []float32) {
	d := m.Dim
	o := 0
	emb = p[o : o+m.Vocab*d]
	o += m.Vocab * d
	wq = p[o : o+d*d]
	o += d * d
	wk = p[o : o+d*d]
	o += d * d
	wv = p[o : o+d*d]
	o += d * d
	wo = p[o : o+d*m.Classes]
	o += d * m.Classes
	bo = p[o : o+m.Classes]
	return
}

// attnState keeps forward activations for backward. Row matrices are arena
// views; kF/vF are the flat row-major backings of k and v for the row-dot
// kernels.
type attnState struct {
	x       [][]float32 // T x D token embeddings
	q, k, v [][]float32 // T x D projections
	kF, vF  []float32   // flat backings of k, v
	attn    [][]float32 // T x T softmax rows
	h       [][]float32 // T x D attention output
	pooled  []float32   // D mean-pooled
	probs   []float32
}

// forward runs the model on one token sequence. It Resets the arena, so
// activations (and any backward temps carved after it) live exactly until
// the next forward on this instance.
func (m *Attention) forward(params []float32, tok []int) *attnState {
	emb, wq, wk, wv, wo, bo := m.views(params)
	d := m.Dim
	T := len(tok)
	sc := m.scratch()
	sc.arena.Reset()
	st := &sc.st
	_, st.x = sc.arena.RowsFlat(T, d)
	_, st.q = sc.arena.RowsFlat(T, d)
	st.kF, st.k = sc.arena.RowsFlat(T, d)
	st.vF, st.v = sc.arena.RowsFlat(T, d)
	_, st.attn = sc.arena.RowsFlat(T, T)
	_, st.h = sc.arena.RowsFlat(T, d)
	st.pooled = sc.arena.Alloc(d)
	for t, id := range tok {
		copy(st.x[t], emb[id*d:(id+1)*d])
	}
	// Q/K/V projections: one blocked matvec per token row (rows zeroed by
	// the arena, so AddMatVec's accumulate is an assign).
	for t := 0; t < T; t++ {
		kernels.AddMatVec(st.q[t], st.x[t], wq, d, d)
		kernels.AddMatVec(st.k[t], st.x[t], wk, d, d)
		kernels.AddMatVec(st.v[t], st.x[t], wv, d, d)
	}
	scale := float32(1 / math.Sqrt(float64(d)))
	for t := 0; t < T; t++ {
		row := st.attn[t]
		// row[u] = q[t]·k[u], each a single ascending-i chain.
		kernels.DotRowsInto(row, st.q[t], st.kF, T, d)
		for u := 0; u < T; u++ {
			row[u] *= scale
		}
		softmaxInto(row, row)
	}
	for t := 0; t < T; t++ {
		// h[t] = attn[t]·V, additions over ascending u per output.
		kernels.AddMatVec(st.h[t], st.attn[t], st.vF, T, d)
		for j := 0; j < d; j++ {
			st.pooled[j] += st.h[t][j] / float32(T)
		}
	}
	logits := sc.arena.Alloc(m.Classes)
	kernels.MatVecInto(logits, bo, st.pooled, wo, d, m.Classes)
	st.probs = softmaxInto(sc.arena.Alloc(m.Classes), logits)
	return st
}

// Forward returns class probabilities for one example. The returned slice
// aliases the model's scratch arena and is valid until the next call on
// this instance.
func (m *Attention) Forward(params []float32, tok []int) []float32 {
	return m.forward(params, tok).probs
}

// LossAndGrad computes mean cross-entropy over a minibatch and the full
// gradient into grads (zeroed first). Returns the loss.
func (m *Attention) LossAndGrad(params []float32, ds *Dataset, batch []int, grads []float32) float64 {
	for i := range grads {
		grads[i] = 0
	}
	_, wq, wk, wv, wo, _ := m.views(params)
	gemb, gwq, gwk, gwv, gwo, gbo := m.views(grads)
	d := m.Dim
	var loss float64
	inv := float32(1.0 / float64(len(batch)))
	scale := float32(1 / math.Sqrt(float64(d)))

	for _, idx := range batch {
		tok := ds.TrainTok[idx]
		y := ds.TrainY[idx]
		T := len(tok)
		st := m.forward(params, tok)
		sc := m.sc
		p := float64(st.probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)

		// Classifier backward: dz first, then the fused rank-1 + row-dot
		// kernel over Wout (dPooled[j] is a single ascending-c chain,
		// exactly the order of the old c-outer loop).
		dz := sc.arena.Alloc(m.Classes)
		for c := 0; c < m.Classes; c++ {
			dzc := st.probs[c] * inv
			if c == y {
				dzc -= inv
			}
			dz[c] = dzc
			gbo[c] += dzc
		}
		dPooled := sc.arena.Alloc(d)
		kernels.BackProjSet(gwo, dPooled, st.pooled, dz, wo, d, m.Classes)
		// Mean pool backward: dH[t] = dPooled / T.
		dH := sc.arena.Rows(T, d)
		for t := 0; t < T; t++ {
			for j := 0; j < d; j++ {
				dH[t][j] = dPooled[j] / float32(T)
			}
		}
		// H = A V: dA[t][u] = dH[t]·v[u] (ascending-j chain),
		// dV[u] += attn[t][u]·dH[t] accumulated over ascending t.
		dA := sc.arena.Rows(T, T)
		dV := sc.arena.Rows(T, d)
		for t := 0; t < T; t++ {
			kernels.DotRowsInto(dA[t], dH[t], st.vF, T, d)
			for u := 0; u < T; u++ {
				kernels.Axpy(dV[u], st.attn[t][u], dH[t])
			}
		}
		// Softmax backward per row -> dScores, then Q/K.
		dQ := sc.arena.Rows(T, d)
		dK := sc.arena.Rows(T, d)
		for t := 0; t < T; t++ {
			var dot float32
			for u := 0; u < T; u++ {
				dot += dA[t][u] * st.attn[t][u]
			}
			for u := 0; u < T; u++ {
				dsc := st.attn[t][u] * (dA[t][u] - dot) * scale
				kernels.Axpy(dQ[t], dsc, st.k[u])
				kernels.Axpy(dK[u], dsc, st.q[t])
			}
		}
		// Projections: P = X W  =>  dW += X^T dP, dX += dP W^T, fused per
		// token row by the backward kernel.
		dX := sc.arena.Rows(T, d)
		for _, bp := range [3]struct {
			dP [][]float32
			w  []float32
			gw []float32
		}{{dQ, wq, gwq}, {dK, wk, gwk}, {dV, wv, gwv}} {
			for t := 0; t < T; t++ {
				kernels.BackProjAdd(bp.gw, dX[t], st.x[t], bp.dP[t], bp.w, d, d)
			}
		}
		// Embedding rows.
		for t, id := range tok {
			base := id * d
			for i := 0; i < d; i++ {
				gemb[base+i] += dX[t][i]
			}
		}
	}
	return loss / float64(len(batch))
}

// Accuracy evaluates top-1 accuracy on the test split.
func (m *Attention) Accuracy(params []float32, ds *Dataset) float64 {
	correct := 0
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		best := 0
		for c := range probs {
			if probs[c] > probs[best] {
				best = c
			}
		}
		if best == ds.TestY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.TestTok))
}

// MeanLoss evaluates mean cross-entropy on the test split.
func (m *Attention) MeanLoss(params []float32, ds *Dataset) float64 {
	var loss float64
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		p := float64(probs[ds.TestY[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
	}
	return loss / float64(len(ds.TestTok))
}
