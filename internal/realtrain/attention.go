package realtrain

import (
	"math"
	"math/rand"
)

// Attention is a single-head self-attention classifier — the
// transformer-family counterpart of the MLP proxy, so the accuracy
// experiments can run on the same architecture class as the paper's
// workloads:
//
//	tokens -> Emb -> self-attention (softmax(QK^T/sqrt(D)) V) ->
//	mean-pool -> logits.
//
// The whole model is one flat FP32 vector for the DBA machinery, and the
// backward pass is hand-derived (validated against finite differences).
type Attention struct {
	Vocab, Dim, Classes int
	Params              []float32
}

// NewAttention builds the model with scaled random initialization.
func NewAttention(vocab, dim, classes int, seed int64) *Attention {
	m := &Attention{Vocab: vocab, Dim: dim, Classes: classes}
	m.Params = make([]float32, m.NumParams())
	rng := rand.New(rand.NewSource(seed))
	emb, wq, wk, wv, wo, _ := m.views(m.Params)
	for i := range emb {
		emb[i] = 0.5 * float32(rng.NormFloat64())
	}
	s := float32(math.Sqrt(1 / float64(dim)))
	for _, w := range [][]float32{wq, wk, wv} {
		for i := range w {
			w[i] = s * float32(rng.NormFloat64())
		}
	}
	for i := range wo {
		wo[i] = s * float32(rng.NormFloat64())
	}
	return m
}

// NumParams returns the flat parameter count:
// Emb + Wq + Wk + Wv + Wout + bout.
func (m *Attention) NumParams() int {
	d := m.Dim
	return m.Vocab*d + 3*d*d + d*m.Classes + m.Classes
}

func (m *Attention) views(p []float32) (emb, wq, wk, wv, wo, bo []float32) {
	d := m.Dim
	o := 0
	emb = p[o : o+m.Vocab*d]
	o += m.Vocab * d
	wq = p[o : o+d*d]
	o += d * d
	wk = p[o : o+d*d]
	o += d * d
	wv = p[o : o+d*d]
	o += d * d
	wo = p[o : o+d*m.Classes]
	o += d * m.Classes
	bo = p[o : o+m.Classes]
	return
}

// attnState keeps forward activations for backward.
type attnState struct {
	x       [][]float32 // T x D token embeddings
	q, k, v [][]float32 // T x D projections
	attn    [][]float32 // T x T softmax rows
	h       [][]float32 // T x D attention output
	pooled  []float32   // D mean-pooled
	probs   []float32
}

func matRows(t, d int) [][]float32 {
	m := make([][]float32, t)
	for i := range m {
		m[i] = make([]float32, d)
	}
	return m
}

// forward runs the model on one token sequence.
func (m *Attention) forward(params []float32, tok []int) *attnState {
	emb, wq, wk, wv, wo, bo := m.views(params)
	d := m.Dim
	T := len(tok)
	st := &attnState{
		x: matRows(T, d), q: matRows(T, d), k: matRows(T, d), v: matRows(T, d),
		attn: matRows(T, T), h: matRows(T, d), pooled: make([]float32, d),
	}
	for t, id := range tok {
		copy(st.x[t], emb[id*d:(id+1)*d])
	}
	proj := func(dst [][]float32, w []float32) {
		for t := 0; t < T; t++ {
			for j := 0; j < d; j++ {
				var s float32
				for i := 0; i < d; i++ {
					s += st.x[t][i] * w[i*d+j]
				}
				dst[t][j] = s
			}
		}
	}
	proj(st.q, wq)
	proj(st.k, wk)
	proj(st.v, wv)
	scale := float32(1 / math.Sqrt(float64(d)))
	for t := 0; t < T; t++ {
		row := st.attn[t]
		for u := 0; u < T; u++ {
			var s float32
			for i := 0; i < d; i++ {
				s += st.q[t][i] * st.k[u][i]
			}
			row[u] = s * scale
		}
		copy(row, softmax(row))
	}
	for t := 0; t < T; t++ {
		for j := 0; j < d; j++ {
			var s float32
			for u := 0; u < T; u++ {
				s += st.attn[t][u] * st.v[u][j]
			}
			st.h[t][j] = s
			st.pooled[j] += s / float32(T)
		}
	}
	logits := make([]float32, m.Classes)
	for c := 0; c < m.Classes; c++ {
		s := bo[c]
		for j := 0; j < d; j++ {
			s += st.pooled[j] * wo[j*m.Classes+c]
		}
		logits[c] = s
	}
	st.probs = softmax(logits)
	return st
}

// Forward returns class probabilities for one example.
func (m *Attention) Forward(params []float32, tok []int) []float32 {
	return m.forward(params, tok).probs
}

// LossAndGrad computes mean cross-entropy over a minibatch and the full
// gradient into grads (zeroed first). Returns the loss.
func (m *Attention) LossAndGrad(params []float32, ds *Dataset, batch []int, grads []float32) float64 {
	for i := range grads {
		grads[i] = 0
	}
	_, wq, wk, wv, wo, _ := m.views(params)
	gemb, gwq, gwk, gwv, gwo, gbo := m.views(grads)
	d := m.Dim
	var loss float64
	inv := float32(1.0 / float64(len(batch)))
	scale := float32(1 / math.Sqrt(float64(d)))

	for _, idx := range batch {
		tok := ds.TrainTok[idx]
		y := ds.TrainY[idx]
		T := len(tok)
		st := m.forward(params, tok)
		p := float64(st.probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)

		// Classifier backward.
		dPooled := make([]float32, d)
		for c := 0; c < m.Classes; c++ {
			dz := st.probs[c] * inv
			if c == y {
				dz -= inv
			}
			gbo[c] += dz
			for j := 0; j < d; j++ {
				gwo[j*m.Classes+c] += st.pooled[j] * dz
				dPooled[j] += wo[j*m.Classes+c] * dz
			}
		}
		// Mean pool backward: dH[t] = dPooled / T.
		dH := matRows(T, d)
		for t := 0; t < T; t++ {
			for j := 0; j < d; j++ {
				dH[t][j] = dPooled[j] / float32(T)
			}
		}
		// H = A V.
		dA := matRows(T, T)
		dV := matRows(T, d)
		for t := 0; t < T; t++ {
			for u := 0; u < T; u++ {
				var s float32
				for j := 0; j < d; j++ {
					s += dH[t][j] * st.v[u][j]
					dV[u][j] += st.attn[t][u] * dH[t][j]
				}
				dA[t][u] = s
			}
		}
		// Softmax backward per row -> dScores, then Q/K.
		dQ := matRows(T, d)
		dK := matRows(T, d)
		for t := 0; t < T; t++ {
			var dot float32
			for u := 0; u < T; u++ {
				dot += dA[t][u] * st.attn[t][u]
			}
			for u := 0; u < T; u++ {
				ds := st.attn[t][u] * (dA[t][u] - dot) * scale
				for i := 0; i < d; i++ {
					dQ[t][i] += ds * st.k[u][i]
					dK[u][i] += ds * st.q[t][i]
				}
			}
		}
		// Projections: P = X W  =>  dW += X^T dP, dX += dP W^T.
		dX := matRows(T, d)
		backProj := func(dP [][]float32, w, gw []float32) {
			for t := 0; t < T; t++ {
				for i := 0; i < d; i++ {
					xti := st.x[t][i]
					var acc float32
					for j := 0; j < d; j++ {
						gw[i*d+j] += xti * dP[t][j]
						acc += dP[t][j] * w[i*d+j]
					}
					dX[t][i] += acc
				}
			}
		}
		backProj(dQ, wq, gwq)
		backProj(dK, wk, gwk)
		backProj(dV, wv, gwv)
		// Embedding rows.
		for t, id := range tok {
			base := id * d
			for i := 0; i < d; i++ {
				gemb[base+i] += dX[t][i]
			}
		}
	}
	return loss / float64(len(batch))
}

// Accuracy evaluates top-1 accuracy on the test split.
func (m *Attention) Accuracy(params []float32, ds *Dataset) float64 {
	correct := 0
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		best := 0
		for c := range probs {
			if probs[c] > probs[best] {
				best = c
			}
		}
		if best == ds.TestY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.TestTok))
}

// MeanLoss evaluates mean cross-entropy on the test split.
func (m *Attention) MeanLoss(params []float32, ds *Dataset) float64 {
	var loss float64
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		p := float64(probs[ds.TestY[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
	}
	return loss / float64(len(ds.TestTok))
}
