package realtrain

import (
	"testing"
)

// benchTrainer builds a fine-tune-ready trainer for the per-step
// benchmarks: tiny pre-phase, effectively unbounded step budget, SDC
// guards on (the production session posture, and the configuration the
// fused ADAM epilogue exists for).
func benchTrainer(tb testing.TB, arch string, workers int) *Trainer {
	tb.Helper()
	t, err := NewTrainer(Config{
		Steps:    1 << 30,
		Batch:    32,
		Seed:     42,
		PreSteps: 1,
		Arch:     arch,
		DBA:      true,
		// SampleEvery pushed out of the measurement window so the
		// occasional samples-slice append does not blur the steady-state
		// allocation count.
		SampleEvery: 1 << 29,
		SDCChecks:   true,
		Workers:     workers,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

// TestTrainStepSteadyStateAllocs pins the tentpole's allocation contract:
// after warm-up, a fine-tuning step allocates nothing — every model
// scratch buffer comes from the kernels.Arena, the minibatch buffer is
// reused, and the fused ADAM epilogue writes into preallocated per-chunk
// slots. A regression here silently re-introduces per-step GC pressure,
// so the bound is exact (0 allocs/step), per architecture.
func TestTrainStepSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model per architecture")
	}
	for _, arch := range []string{"mlp", "attention", "stack"} {
		t.Run(arch, func(t *testing.T) {
			tr := benchTrainer(t, arch, 1)
			// Warm-up: let arenas, scratch and the batch buffer reach
			// their steady-state capacities.
			for i := 0; i < 3; i++ {
				if err := tr.Step(); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := tr.Step(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state Step allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkTrainStep measures one full fine-tuning step (guard verify,
// forward/backward, fused clip+ADAM+scan pass, DBA merge, checksum
// refresh) per architecture — the end-to-end number the perf gate
// ratchets.
func BenchmarkTrainStep(b *testing.B) {
	for _, arch := range []string{"mlp", "attention", "stack"} {
		b.Run(arch, func(b *testing.B) {
			tr := benchTrainer(b, arch, 1)
			for i := 0; i < 3; i++ {
				if err := tr.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
