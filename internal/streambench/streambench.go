// Package streambench is the shared measurement core for the stream-
// simulator microbenchmark: cmd/benchflow records the numbers in
// BENCH_flow.json and cmd/perfgate enforces them against the checked-in
// baseline. Keeping one definition of "the stream microbenchmark" means the
// gate guards exactly what the report shows.
package streambench

import (
	"testing"

	"teco/internal/cxl"
	"teco/internal/sim"
)

// RunLines is the run length of the benchmark workload: one homogeneous
// burst of 1024 cache lines (a 64KiB layer chunk), pushed back-to-back.
const RunLines = 1024

// RunBytes is the payload carried by one benchmark run.
const RunBytes = RunLines * 64

// Result is one measured configuration of the microbenchmark.
type Result struct {
	// NsPerOp is nanoseconds per pushed run (RunLines lines).
	NsPerOp int64 `json:"ns_per_op"`
	// NsPerLine is NsPerOp spread over the run's cache lines.
	NsPerLine float64 `json:"ns_per_line"`
	// AllocsPerOp is heap allocations per pushed run.
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// run executes the microbenchmark in the requested mode via
// testing.Benchmark (so iteration-count calibration matches `go test
// -bench`). A fresh link+stream per measurement keeps results independent.
func run(perLine bool) Result {
	r := testing.Benchmark(func(b *testing.B) {
		link := cxl.NewLink(sim.New(), 0, 0)
		s := cxl.NewStream(link, perLine)
		// Warm the stream's event pool so steady state is measured.
		s.PushRun(0, RunBytes, RunLines, 0, 0, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PushRun(0, RunBytes, RunLines, 0, 0, false)
		}
	})
	return Result{
		NsPerOp:     r.NsPerOp(),
		NsPerLine:   float64(r.NsPerOp()) / RunLines,
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// MeasurePerLine benchmarks the per-line reference path.
func MeasurePerLine() Result { return run(true) }

// MeasureCoalesced benchmarks the flow-coalescing fast path.
func MeasureCoalesced() Result { return run(false) }

// Best returns the fastest of n repeated measurements — the standard
// noise-rejection for a shared machine (slowdowns are interference, never
// the code being "luckily" fast).
func Best(measure func() Result, n int) Result {
	best := measure()
	for i := 1; i < n; i++ {
		if r := measure(); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}
