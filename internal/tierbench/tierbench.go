// Package tierbench is the shared measurement core for the hot/cold
// migration microbenchmark: BenchmarkTieringMigration (make bench) and
// cmd/perfgate both run this one workload, so the gate guards exactly what
// the benchmark shows. The workload is the tiering controller's planning
// hot path on the GPT-2 slot table (parameter + optimizer-state slots) at
// a fast tier holding 25% of the tiered bytes: one access epoch of skewed
// touches followed by a budgeted PlanStep under the recency policy. The
// hot half of the parameter slots — re-touched after the full walk, so it
// ends the epoch most recent — flips every epoch, so each op ranks
// candidates, searches demotion sets, and applies real migrations —
// steady-state convergence never lets the planner idle.
package tierbench

import (
	"testing"

	"teco/internal/modelzoo"
	"teco/internal/tiering"
)

// CapacityPct is the fast-tier size in percent of the tiered slot bytes —
// the tiering sweep's headline capacity-pressure cell.
const CapacityPct = 25

// Budget is the per-epoch migration byte budget (the sweeps' generous
// 512 MiB arm: the throttle admits every planned move, so the benchmark
// times planning, not deferral).
const Budget = 512 << 20

// Result is one measured run of the microbenchmark.
type Result struct {
	// NsPerOp is nanoseconds per plan epoch (touch walk + PlanStep).
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per plan epoch.
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// slotTable builds the GPT-2 tiered slot table: per-layer parameter slots
// interleaved with 2× optimizer-state slots, matching core.RunTiered's
// OptSlots layout.
func slotTable() []int64 {
	m := modelzoo.GPT2()
	per := m.ParamBytes() / int64(m.Layers)
	rem := m.ParamBytes() - per*int64(m.Layers)
	sizes := make([]int64, 0, 2*m.Layers)
	for i := 0; i < m.Layers; i++ {
		p := per
		if i == m.Layers-1 {
			p += rem
		}
		sizes = append(sizes, p, 2*p)
	}
	return sizes
}

// newController builds the benchmark controller under capacity pressure.
func newController() (*tiering.Controller, error) {
	sizes := slotTable()
	var total int64
	for _, s := range sizes {
		total += s
	}
	return tiering.New(tiering.Config{
		Sizes:       sizes,
		FastBytes:   total * CapacityPct / 100,
		Policy:      tiering.Recency,
		BudgetBytes: Budget,
	})
}

// epoch walks one access epoch at phase p and plans its migrations: every
// slot is touched once, then this phase's hot parameter slots are touched
// again — ending the epoch as the most recently used set. The hot half
// alternates with the phase, so the recency ordering flips and the planner
// moves bytes every epoch.
func epoch(ctl *tiering.Controller, p int) []tiering.Migration {
	n := ctl.Slots()
	for k := 0; k < n; k++ {
		ctl.Touch(k)
	}
	for k := 0; k < n; k += 2 {
		if (k/2)%2 == p%2 { // this phase's hot parameter slots
			ctl.Touch(k)
		}
	}
	return ctl.PlanStep(-1)
}

// Run executes the workload b.N times (the body of
// BenchmarkTieringMigration).
func Run(b *testing.B) {
	ctl, err := newController()
	if err != nil {
		b.Fatal(err)
	}
	epoch(ctl, 0) // warm: separate the first-fit placement from steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch(ctl, i+1)
	}
}

// Measure runs the microbenchmark via testing.Benchmark (so iteration-count
// calibration matches `go test -bench`).
func Measure() Result {
	r := testing.Benchmark(Run)
	return Result{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp()}
}

// Best returns the fastest of n repeated measurements — slowdowns on a
// shared machine are interference, never the code being "luckily" fast.
func Best(n int) Result {
	best := Measure()
	for i := 1; i < n; i++ {
		if r := Measure(); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}
