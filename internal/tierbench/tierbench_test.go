package tierbench

import "testing"

// BenchmarkTieringMigration is the hot/cold migration microbenchmark `make
// bench` reports and cmd/perfgate gates against perf_baseline.json.
func BenchmarkTieringMigration(b *testing.B) { Run(b) }

// TestEpochMigrates pins the workload's premise: the alternating hot set
// forces the planner to move bytes on every epoch, so the benchmark times
// real migration planning rather than a converged no-op.
func TestEpochMigrates(t *testing.T) {
	ctl, err := newController()
	if err != nil {
		t.Fatal(err)
	}
	epoch(ctl, 0)
	for p := 1; p <= 4; p++ {
		if ms := epoch(ctl, p); len(ms) == 0 {
			t.Fatalf("epoch %d planned no migrations — the benchmark would time an idle planner", p)
		}
	}
}
