package phases

import (
	"strings"
	"testing"

	"teco/internal/sim"
)

func TestBreakdownCheckZeroTotal(t *testing.T) {
	var b Breakdown
	if err := b.Check(); err != nil {
		t.Fatalf("zero breakdown must satisfy the conservation laws: %v", err)
	}
	if b.Total() != 0 {
		t.Fatalf("zero breakdown total = %v", b.Total())
	}
	if f := b.CommFraction(); f != 0 {
		t.Fatalf("zero-total comm fraction = %v, want 0 (guarded division)", f)
	}
}

func TestBreakdownCheckNegativeDurations(t *testing.T) {
	fields := []struct {
		name string
		set  func(*Breakdown)
	}{
		{"fwd", func(b *Breakdown) { b.Fwd = -1 }},
		{"bwd", func(b *Breakdown) { b.Bwd = -1 }},
		{"grad", func(b *Breakdown) { b.Grad = -1 }},
		{"clip", func(b *Breakdown) { b.Clip = -1 }},
		{"adam", func(b *Breakdown) { b.Adam = -1 }},
		{"param", func(b *Breakdown) { b.Prm = -1 }},
	}
	for _, f := range fields {
		b := Breakdown{Fwd: sim.Millisecond, Bwd: sim.Millisecond}
		f.set(&b)
		err := b.Check()
		if err == nil {
			t.Errorf("negative %s duration passed Check", f.name)
			continue
		}
		if !strings.Contains(err.Error(), f.name) {
			t.Errorf("negative %s reported as %q", f.name, err)
		}
	}
}

func TestStepResultCheckViolations(t *testing.T) {
	valid := StepResult{Breakdown: Breakdown{Fwd: sim.Millisecond}}
	if err := valid.Check(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*StepResult)
	}{
		{"negative link volume", func(r *StepResult) { r.ParamLinkBytes = -1 }},
		{"negative fault counter", func(r *StepResult) { r.Fault.Retries = -1 }},
		{"recovered exceeds poisoned", func(r *StepResult) { r.Fault.Recovered = 1 }},
		{"negative stall time", func(r *StepResult) { r.Fault.StallTime = -1 }},
		{"stall time without stalls", func(r *StepResult) { r.Fault.StallTime = sim.Microsecond }},
		{"negative recovery counter", func(r *StepResult) { r.Recovery.CkptWrites = -1 }},
		{"rollbacks exceed detections", func(r *StepResult) { r.Recovery.Rollbacks = 1 }},
		{"checkpoint bytes without writes", func(r *StepResult) { r.Recovery.CkptBytes = 64 }},
		{"negative breakdown", func(r *StepResult) { r.Grad = -1 }},
	}
	for _, c := range cases {
		r := valid
		c.mut(&r)
		if err := r.Check(); err == nil {
			t.Errorf("%s passed Check", c.name)
		}
	}
}

func TestStepResultCheckAcceptsConsistentFaults(t *testing.T) {
	r := StepResult{
		Breakdown: Breakdown{Fwd: sim.Millisecond, Grad: sim.Microsecond},
		Fault: FaultStats{Retries: 3, ReplayedBytes: 192, Poisoned: 2, Recovered: 2,
			Stalls: 1, StallTime: sim.Microsecond, Exposed: sim.Nanosecond},
		Recovery: RecoveryStats{CkptWrites: 2, CkptBytes: 1 << 16,
			SDCDetected: 1, Rollbacks: 1, ReplayedSteps: 4},
	}
	if err := r.Check(); err != nil {
		t.Fatalf("consistent faulted result rejected: %v", err)
	}
}
