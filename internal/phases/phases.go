// Package phases defines the per-training-step time breakdown shared by the
// ZeRO-Offload baseline engine and the TECO engines — the exact categories
// of the paper's Figure 12: forward-backward, gradient transfer exposed to
// the critical path, gradient optimizer (clipping), parameter optimization
// (ADAM), and parameter transfer exposed to the critical path.
package phases

import (
	"fmt"
	"strconv"
	"strings"

	"teco/internal/sim"
)

// Breakdown is the critical-path decomposition of one training step. Phases
// are laid end to end: Total is their sum by construction.
type Breakdown struct {
	Fwd  sim.Time // forward propagation (GPU)
	Bwd  sim.Time // backward propagation (GPU)
	Grad sim.Time // gradient transfer time exposed beyond backward
	Clip sim.Time // gradient clipping (CPU)
	Adam sim.Time // parameter optimization (CPU ADAM)
	Prm  sim.Time // parameter transfer time exposed beyond ADAM
}

// Total returns the end-to-end step time.
func (b Breakdown) Total() sim.Time {
	return b.Fwd + b.Bwd + b.Grad + b.Clip + b.Adam + b.Prm
}

// CommExposed returns the communication time on the critical path — the
// quantity Table I reports as a fraction of training time.
func (b Breakdown) CommExposed() sim.Time { return b.Grad + b.Prm }

// CommFraction returns CommExposed / Total.
func (b Breakdown) CommFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.CommExposed()) / float64(t)
}

// Compute returns the non-communication time.
func (b Breakdown) Compute() sim.Time { return b.Total() - b.CommExposed() }

// String renders the breakdown. Float formatting is pinned through strconv
// (no locale- or verb-sensitive paths), so the output is byte-identical
// across platforms and Go versions — asserted by the conformance goldens.
func (b Breakdown) String() string {
	var sb strings.Builder
	sb.WriteString("fwd=" + b.Fwd.String())
	sb.WriteString(" bwd=" + b.Bwd.String())
	sb.WriteString(" grad=" + b.Grad.String())
	sb.WriteString(" clip=" + b.Clip.String())
	sb.WriteString(" adam=" + b.Adam.String())
	sb.WriteString(" param=" + b.Prm.String())
	sb.WriteString(" total=" + b.Total().String())
	sb.WriteString(" (comm " + strconv.FormatFloat(100*b.CommFraction(), 'f', 1, 64) + "%)")
	return sb.String()
}

// Check validates the breakdown's conservation laws and returns the first
// violation, if any: no phase may carry a negative duration (exposure terms
// are clamped differences, so a negative one means broken fence ordering),
// and Total must be exactly the sum of the six phases — the additivity the
// paper's Fig 12 stacking relies on.
func (b Breakdown) Check() error {
	for _, p := range []struct {
		name string
		d    sim.Time
	}{{"fwd", b.Fwd}, {"bwd", b.Bwd}, {"grad", b.Grad}, {"clip", b.Clip}, {"adam", b.Adam}, {"param", b.Prm}} {
		if p.d < 0 {
			return fmt.Errorf("phases: negative %s duration %v", p.name, p.d)
		}
	}
	if sum := b.Fwd + b.Bwd + b.Grad + b.Clip + b.Adam + b.Prm; b.Total() != sum {
		return fmt.Errorf("phases: total %v != phase sum %v", b.Total(), sum)
	}
	return nil
}

// Variant identifies the system being simulated.
type Variant int

const (
	// ZeroOffload is the DeepSpeed baseline (paper Fig 1).
	ZeroOffload Variant = iota
	// TECOCXL uses the update-coherent CXL giant cache without DBA.
	TECOCXL
	// TECOReduction uses CXL plus dirty-byte aggregation.
	TECOReduction
	// TECOInvalidation is the ablation running TECO's giant cache with
	// the stock invalidation protocol (on-demand transfers, §IV-A2).
	TECOInvalidation
)

func (v Variant) String() string {
	switch v {
	case ZeroOffload:
		return "ZeRO-Offload"
	case TECOCXL:
		return "TECO-CXL"
	case TECOReduction:
		return "TECO-Reduction"
	case TECOInvalidation:
		return "TECO-Invalidation"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// FaultStats summarizes link-fault activity and recovery during one step.
// The zero value means a pristine link (no fault injection configured).
type FaultStats struct {
	// Retries counts link-layer packet retransmissions (NAK + replay).
	Retries int64
	// ReplayedBytes is the wire volume retransmitted from replay buffers.
	ReplayedBytes int64
	// Poisoned counts packets whose retry budget was exhausted and that
	// were delivered poisoned to the protocol layer.
	Poisoned int64
	// Recovered counts poisoned lines the coherence protocol re-fetched
	// on demand instead of consuming corrupt data.
	Recovered int64
	// Stalls counts injected controller-queue stalls; StallTime is their
	// cumulative duration.
	Stalls    int64
	StallTime sim.Time
	// Exposed is the retry/recovery latency on the step's critical path:
	// the difference between the faulted and fault-free fence times plus
	// the on-demand poison-recovery round trips.
	Exposed sim.Time
	// Degraded reports that the graceful-degradation policy switched the
	// step from DBA-aggregated payloads to full-line transfers.
	Degraded bool
}

// Any reports whether any fault activity was recorded.
func (f FaultStats) Any() bool {
	return f.Retries != 0 || f.Poisoned != 0 || f.Stalls != 0 ||
		f.Exposed != 0 || f.Degraded
}

// FabricStats summarizes switched-fabric activity during one step of the
// data-parallel mode (zero when the step ran on the point-to-point link).
type FabricStats struct {
	// Replicas is the data-parallel width the step was configured with;
	// HostPorts is the spine's uplink count (Replicas/HostPorts is the
	// oversubscription ratio).
	Replicas  int64
	HostPorts int64
	// PortsDown counts ports killed during the step; Failovers and
	// FailoverRetries count reroutes onto spare ports and the backoff
	// probes spent finding them.
	PortsDown       int64
	Failovers       int64
	FailoverRetries int64
	// SpineBytes is the payload volume that crossed the switch spine;
	// SpineQueued is the cumulative time flows waited for it (the
	// oversubscription cost).
	SpineBytes  int64
	SpineQueued sim.Time
	// LostReplicas counts replicas dropped after failover was exhausted;
	// Redistributed counts their batch shards reassigned to survivors;
	// Degraded reports the step completed with a shrunken group.
	LostReplicas  int64
	Redistributed int64
	Degraded      bool
}

// Any reports whether any fabric activity was recorded.
func (f FabricStats) Any() bool {
	return f.Replicas != 0 || f.SpineBytes != 0 || f.PortsDown != 0 ||
		f.Failovers != 0 || f.LostReplicas != 0
}

// LayerStats summarizes per-layer offload scheduling during one step: how
// the layer traversal interacted with the capacity-bounded fast tier (zero
// when the step ran without a layer scheduler).
type LayerStats struct {
	// Layers is the scheduled layer count; CacheBytes is the fast-tier
	// capacity and ResidentBytes the bytes held when the step finished.
	Layers        int64
	CacheBytes    int64
	ResidentBytes int64
	// Hits / PrefetchHits / DemandMisses classify the demand uses;
	// PrefetchIssued and Evictions count fast-tier churn.
	Hits           int64
	PrefetchHits   int64
	DemandMisses   int64
	PrefetchIssued int64
	Evictions      int64
	// FetchBytes / WritebackBytes are the staging-plane link volumes
	// (layer fetches down, activation spills and writebacks up).
	FetchBytes     int64
	WritebackBytes int64
	// DemandStall is fetch latency fully exposed on the critical path
	// (layer not resident when execution reached it); PrefetchStall is the
	// residual wait on fetches a prefetch started but compute outran;
	// ActStall is the activation refetch wait of the offload mode.
	DemandStall   sim.Time
	PrefetchStall sim.Time
	ActStall      sim.Time
}

// Any reports whether any layer-scheduling activity was recorded.
func (l LayerStats) Any() bool {
	return l.Layers != 0 || l.Hits != 0 || l.DemandMisses != 0 ||
		l.FetchBytes != 0 || l.WritebackBytes != 0
}

// TierStats summarizes heterogeneous-memory tiering during one step or an
// aggregated tiered run: how slot accesses split across the fast DRAM tier
// and the CXL-expander far tier, and what the online hot/cold migration
// moved (zero when the run had no tiering controller).
type TierStats struct {
	// Slots is the tiered slot count (parameter and, when scheduled
	// separately, optimizer-state slots); Steps is the number of training
	// steps aggregated into these counters.
	Slots int64
	Steps int64
	// FastBytes is the fast-tier (host DRAM) capacity; ResidentBytes is
	// what it held when the run finished.
	FastBytes     int64
	ResidentBytes int64
	// FastHits / FarAccesses classify demand slot accesses by the tier
	// that served them; FarFetchBytes is the far-tier demand traffic
	// streamed over the CXL link.
	FastHits      int64
	FarAccesses   int64
	FarFetchBytes int64
	// Migrations / PromotedBytes / DemotedBytes count planned hot/cold
	// moves between the tiers; Deferred counts promotions the per-step
	// migration budget (the admission throttle) pushed to a later step.
	Migrations    int64
	PromotedBytes int64
	DemotedBytes  int64
	Deferred      int64
	// FarStall is far-access latency exposed on forward/backward parameter
	// touches (it extends Prm); AdamStall is the update-phase exposure on
	// master parameters and optimizer moments (it extends Adam).
	FarStall  sim.Time
	AdamStall sim.Time
}

// Any reports whether any tiering activity was recorded.
func (t TierStats) Any() bool {
	return t.Slots != 0 || t.FastHits != 0 || t.FarAccesses != 0 ||
		t.Migrations != 0 || t.FarFetchBytes != 0
}

// RecoveryStats summarizes checkpoint/restore activity above the link
// layer: how often the run checkpointed, how many silent-data-corruption
// events were detected, and what rolling back and replaying cost. The
// zero value means no checkpointing was configured.
type RecoveryStats struct {
	// CkptWrites counts persisted checkpoints; CkptBytes is their total
	// encoded volume.
	CkptWrites int64
	CkptBytes  int64
	// SDCDetected counts silent-data-corruption detections (per-tensor
	// checksum mismatches and post-ADAM NaN/Inf scans).
	SDCDetected int64
	// Rollbacks counts restores of the last good checkpoint after a
	// detection; ReplayedSteps is the total number of training steps
	// re-executed to catch back up.
	Rollbacks     int64
	ReplayedSteps int64
	// CorruptSnapshotsSkipped counts on-disk checkpoints rejected by CRC
	// during restore (the store fell back to an older one).
	CorruptSnapshotsSkipped int64
	// RecoveryTime is the modeled time spent re-reading snapshots during
	// restores (encoded bytes at NVMe-class bandwidth, like every other
	// sim.Time in this package it is deterministic); the re-executed
	// compute is accounted separately as ReplayedSteps.
	RecoveryTime sim.Time
}

// Any reports whether any checkpoint/recovery activity was recorded.
func (r RecoveryStats) Any() bool {
	return r.CkptWrites != 0 || r.SDCDetected != 0 || r.Rollbacks != 0 ||
		r.ReplayedSteps != 0 || r.CorruptSnapshotsSkipped != 0
}

// Add returns element-wise accumulation.
func (r RecoveryStats) Add(o RecoveryStats) RecoveryStats {
	r.CkptWrites += o.CkptWrites
	r.CkptBytes += o.CkptBytes
	r.SDCDetected += o.SDCDetected
	r.Rollbacks += o.Rollbacks
	r.ReplayedSteps += o.ReplayedSteps
	r.CorruptSnapshotsSkipped += o.CorruptSnapshotsSkipped
	r.RecoveryTime += o.RecoveryTime
	return r
}

// StepResult is a simulated training step: the breakdown plus link-volume
// accounting.
type StepResult struct {
	Variant Variant
	Breakdown
	// ParamLinkBytes / GradLinkBytes are payload bytes crossing the
	// interconnect in each direction per step.
	ParamLinkBytes int64
	GradLinkBytes  int64
	// Fault is the step's link-fault accounting (zero when no faults are
	// injected).
	Fault FaultStats
	// Recovery is the run's checkpoint/restore accounting (zero when no
	// checkpointing is configured); aggregated over a run and amortized
	// per step by core.Session.
	Recovery RecoveryStats
	// Fabric is the switched-fabric accounting (zero on the
	// point-to-point engines).
	Fabric FabricStats
	// Layer is the per-layer offload-scheduling accounting (zero when the
	// step ran whole-model).
	Layer LayerStats
	// Tier is the heterogeneous-memory tiering accounting (zero when
	// placement was static whole-model).
	Tier TierStats
}

// TotalLinkBytes returns combined link volume.
func (r StepResult) TotalLinkBytes() int64 { return r.ParamLinkBytes + r.GradLinkBytes }

// Check validates the step result's accounting invariants and returns the
// first violation, if any: the breakdown laws, non-negative link volumes,
// and the fault/recovery conservation rules (a line can only be recovered
// after being poisoned, stall/exposure latencies are durations, rollbacks
// imply detections).
func (r StepResult) Check() error {
	if err := r.Breakdown.Check(); err != nil {
		return err
	}
	if r.ParamLinkBytes < 0 || r.GradLinkBytes < 0 {
		return fmt.Errorf("phases: negative link volume (param=%d grad=%d)", r.ParamLinkBytes, r.GradLinkBytes)
	}
	f := r.Fault
	if f.Retries < 0 || f.ReplayedBytes < 0 || f.Poisoned < 0 || f.Recovered < 0 || f.Stalls < 0 {
		return fmt.Errorf("phases: negative fault counter %+v", f)
	}
	if f.Recovered > f.Poisoned {
		return fmt.Errorf("phases: recovered %d lines of %d poisoned", f.Recovered, f.Poisoned)
	}
	if f.StallTime < 0 || f.Exposed < 0 {
		return fmt.Errorf("phases: negative fault latency (stall=%v exposed=%v)", f.StallTime, f.Exposed)
	}
	if f.Stalls == 0 && f.StallTime != 0 {
		return fmt.Errorf("phases: %v stall time with zero stalls", f.StallTime)
	}
	rec := r.Recovery
	if rec.CkptWrites < 0 || rec.CkptBytes < 0 || rec.SDCDetected < 0 || rec.Rollbacks < 0 ||
		rec.ReplayedSteps < 0 || rec.CorruptSnapshotsSkipped < 0 || rec.RecoveryTime < 0 {
		return fmt.Errorf("phases: negative recovery counter %+v", rec)
	}
	if rec.Rollbacks > rec.SDCDetected {
		return fmt.Errorf("phases: %d rollbacks for %d detections", rec.Rollbacks, rec.SDCDetected)
	}
	if rec.CkptWrites == 0 && rec.CkptBytes != 0 {
		return fmt.Errorf("phases: %d checkpoint bytes with zero writes", rec.CkptBytes)
	}
	fb := r.Fabric
	if fb.Replicas < 0 || fb.HostPorts < 0 || fb.PortsDown < 0 || fb.Failovers < 0 ||
		fb.FailoverRetries < 0 || fb.SpineBytes < 0 || fb.LostReplicas < 0 || fb.Redistributed < 0 {
		return fmt.Errorf("phases: negative fabric counter %+v", fb)
	}
	if fb.SpineQueued < 0 {
		return fmt.Errorf("phases: negative spine queue time %v", fb.SpineQueued)
	}
	if fb.LostReplicas > fb.PortsDown {
		return fmt.Errorf("phases: %d replicas lost with %d ports down", fb.LostReplicas, fb.PortsDown)
	}
	if fb.Replicas > 0 && fb.LostReplicas >= fb.Replicas {
		return fmt.Errorf("phases: all %d replicas lost in a completed step", fb.Replicas)
	}
	if fb.Degraded && fb.LostReplicas == 0 {
		return fmt.Errorf("phases: degraded fabric step without a lost replica")
	}
	l := r.Layer
	if l.Layers < 0 || l.CacheBytes < 0 || l.ResidentBytes < 0 || l.Hits < 0 ||
		l.PrefetchHits < 0 || l.DemandMisses < 0 || l.PrefetchIssued < 0 ||
		l.Evictions < 0 || l.FetchBytes < 0 || l.WritebackBytes < 0 {
		return fmt.Errorf("phases: negative layer counter %+v", l)
	}
	if l.DemandStall < 0 || l.PrefetchStall < 0 || l.ActStall < 0 {
		return fmt.Errorf("phases: negative layer stall (%v %v %v)", l.DemandStall, l.PrefetchStall, l.ActStall)
	}
	if l.PrefetchHits > l.Hits {
		return fmt.Errorf("phases: %d prefetch hits of %d hits", l.PrefetchHits, l.Hits)
	}
	if l.CacheBytes > 0 && l.ResidentBytes > l.CacheBytes {
		return fmt.Errorf("phases: %d resident bytes exceed %d cache", l.ResidentBytes, l.CacheBytes)
	}
	if l.DemandMisses == 0 && l.DemandStall != 0 {
		return fmt.Errorf("phases: %v demand stall with zero misses", l.DemandStall)
	}
	if l.PrefetchIssued == 0 && (l.PrefetchHits != 0 || l.PrefetchStall != 0) {
		return fmt.Errorf("phases: prefetch results without issued prefetches %+v", l)
	}
	t := r.Tier
	if t.Slots < 0 || t.Steps < 0 || t.FastBytes < 0 || t.ResidentBytes < 0 ||
		t.FastHits < 0 || t.FarAccesses < 0 || t.FarFetchBytes < 0 ||
		t.Migrations < 0 || t.PromotedBytes < 0 || t.DemotedBytes < 0 || t.Deferred < 0 {
		return fmt.Errorf("phases: negative tier counter %+v", t)
	}
	if t.FarStall < 0 || t.AdamStall < 0 {
		return fmt.Errorf("phases: negative tier stall (%v %v)", t.FarStall, t.AdamStall)
	}
	if t.FastBytes > 0 && t.ResidentBytes > t.FastBytes {
		return fmt.Errorf("phases: %d tier resident bytes exceed %d fast-tier capacity", t.ResidentBytes, t.FastBytes)
	}
	if t.Migrations == 0 && (t.PromotedBytes != 0 || t.DemotedBytes != 0) {
		return fmt.Errorf("phases: migrated bytes without migrations %+v", t)
	}
	if t.FarAccesses == 0 && t.FarFetchBytes != 0 {
		return fmt.Errorf("phases: far-tier fetch bytes without far accesses %+v", t)
	}
	// A stall needs a cause: either a demand far access or a migration
	// whose arrival an access raced (the residual wait).
	if t.FarAccesses == 0 && t.Migrations == 0 && (t.FarStall != 0 || t.AdamStall != 0) {
		return fmt.Errorf("phases: tier stall without far accesses or migrations %+v", t)
	}
	return nil
}

// Speedup returns base.Total / r.Total.
func (r StepResult) Speedup(base StepResult) float64 {
	if r.Total() == 0 {
		return 0
	}
	return float64(base.Total()) / float64(r.Total())
}

// CommReduction returns the fractional reduction of exposed communication
// time relative to base — the paper's "TECO reduces communication overhead
// by 93.7% on average (up to 100%)" metric.
func (r StepResult) CommReduction(base StepResult) float64 {
	bc := base.CommExposed()
	if bc == 0 {
		return 0
	}
	red := 1 - float64(r.CommExposed())/float64(bc)
	if red < 0 {
		return 0
	}
	return red
}
