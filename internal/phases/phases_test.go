package phases

import (
	"strings"
	"testing"

	"teco/internal/sim"
)

func sampleBreakdown() Breakdown {
	return Breakdown{
		Fwd:  10 * sim.Millisecond,
		Bwd:  20 * sim.Millisecond,
		Grad: 5 * sim.Millisecond,
		Clip: 3 * sim.Millisecond,
		Adam: 7 * sim.Millisecond,
		Prm:  15 * sim.Millisecond,
	}
}

func TestBreakdownTotals(t *testing.T) {
	b := sampleBreakdown()
	if b.Total() != 60*sim.Millisecond {
		t.Fatalf("total = %v", b.Total())
	}
	if b.CommExposed() != 20*sim.Millisecond {
		t.Fatalf("comm = %v", b.CommExposed())
	}
	if got := b.CommFraction(); got < 0.333 || got > 0.334 {
		t.Fatalf("fraction = %v", got)
	}
	if b.Compute() != 40*sim.Millisecond {
		t.Fatalf("compute = %v", b.Compute())
	}
	if (Breakdown{}).CommFraction() != 0 {
		t.Fatal("empty breakdown must not divide by zero")
	}
}

func TestBreakdownString(t *testing.T) {
	s := sampleBreakdown().String()
	for _, want := range []string{"fwd=", "adam=", "comm"} {
		if !strings.Contains(s, want) {
			t.Fatalf("string %q missing %q", s, want)
		}
	}
}

func TestVariantStrings(t *testing.T) {
	cases := map[Variant]string{
		ZeroOffload:      "ZeRO-Offload",
		TECOCXL:          "TECO-CXL",
		TECOReduction:    "TECO-Reduction",
		TECOInvalidation: "TECO-Invalidation",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d => %q", int(v), v.String())
		}
	}
	if Variant(99).String() == "" {
		t.Fatal("unknown variant renders")
	}
}

func TestSpeedupAndCommReduction(t *testing.T) {
	base := StepResult{Breakdown: sampleBreakdown()}
	fast := StepResult{Breakdown: Breakdown{Fwd: 10 * sim.Millisecond, Bwd: 20 * sim.Millisecond}}
	if s := fast.Speedup(base); s != 2.0 {
		t.Fatalf("speedup = %v", s)
	}
	if r := fast.CommReduction(base); r != 1.0 {
		t.Fatalf("comm reduction = %v", r)
	}
	// Worse comm clamps at 0 reduction.
	worse := StepResult{Breakdown: Breakdown{Grad: 100 * sim.Millisecond}}
	if r := worse.CommReduction(base); r != 0 {
		t.Fatalf("reduction = %v, want clamp to 0", r)
	}
	// Degenerate bases.
	if (StepResult{}).Speedup(base) != 0 {
		t.Fatal("zero total must not divide")
	}
	if fast.CommReduction(StepResult{}) != 0 {
		t.Fatal("zero base comm must not divide")
	}
}

func TestTotalLinkBytes(t *testing.T) {
	r := StepResult{ParamLinkBytes: 100, GradLinkBytes: 50}
	if r.TotalLinkBytes() != 150 {
		t.Fatal("link bytes")
	}
}
