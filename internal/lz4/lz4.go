// Package lz4 implements the LZ4 block format (compressor and
// decompressor) from scratch. It is the lossless-compression baseline of
// the paper's Table VIII: the authors run multi-threaded LZ4 on CPU and
// nvCOMP's LZ4 on GPU over parameter tensors and find both low compression
// ratios (0-36%) and large runtime overhead, concluding DBA cannot be
// replaced by lossless compression.
//
// The implementation follows the LZ4 block specification: sequences of
// [token | literal-length+ | literals | 2-byte offset | match-length+],
// greedy matching through a 4-byte hash chain, ending with a literal-only
// sequence.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch = 4
	// hashLog is the size of the match hash table (2^hashLog entries).
	hashLog   = 16
	hashShift = 32 - hashLog
	// mfLimit: matches must not start within the last 12 bytes.
	mfLimit = 12
	// lastLiterals: the final 5 bytes are always literals.
	lastLiterals = 5
	maxOffset    = 65535
)

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> hashShift
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// CompressBound returns the maximum compressed size for n input bytes.
func CompressBound(n int) int {
	return n + n/255 + 16
}

// Compress appends the LZ4 block encoding of src to dst and returns the
// extended buffer. Empty input encodes to an empty block.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	if len(src) < mfLimit+minMatch {
		return emitLastLiterals(dst, src)
	}

	var table [1 << hashLog]int32
	for i := range table {
		table[i] = -1
	}

	anchor := 0
	pos := 0
	limit := len(src) - mfLimit

	for pos < limit {
		h := hash4(load32(src, pos))
		cand := table[h]
		table[h] = int32(pos)
		if cand < 0 || pos-int(cand) > maxOffset || load32(src, int(cand)) != load32(src, pos) {
			pos++
			continue
		}
		// Extend the match forward.
		matchStart := int(cand)
		matchLen := minMatch
		maxLen := len(src) - lastLiterals - pos
		for matchLen < maxLen && src[matchStart+matchLen] == src[pos+matchLen] {
			matchLen++
		}
		if matchLen < minMatch {
			pos++
			continue
		}
		// Emit sequence: literals [anchor, pos) + match.
		dst = emitSequence(dst, src[anchor:pos], pos-matchStart, matchLen)
		pos += matchLen
		anchor = pos
		// Prime the table inside the match for better future matches.
		if pos < limit {
			table[hash4(load32(src, pos-2))] = int32(pos - 2)
		}
	}
	return emitLastLiterals(dst, src[anchor:])
}

// emitSequence writes one token + literals + match reference.
func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	ml := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 0xF0
	} else {
		token = byte(litLen) << 4
	}
	if ml >= 15 {
		token |= 0x0F
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLength(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = appendLength(dst, ml-15)
	}
	return dst
}

// emitLastLiterals writes the final literal-only sequence.
func emitLastLiterals(dst, literals []byte) []byte {
	litLen := len(literals)
	if litLen >= 15 {
		dst = append(dst, 0xF0)
		dst = appendLength(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

func appendLength(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decompression errors.
var (
	ErrCorrupt  = errors.New("lz4: corrupt block")
	ErrTooLarge = errors.New("lz4: decompressed size exceeds limit")
)

// Decompress decodes an LZ4 block, appending to dst. maxSize bounds the
// decompressed size (0 means no bound).
func Decompress(dst, src []byte, maxSize int) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		token := src[i]
		i++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, i, err = readLength(src, i, litLen)
			if err != nil {
				return dst, err
			}
		}
		if i+litLen > len(src) {
			return dst, ErrCorrupt
		}
		dst = append(dst, src[i:i+litLen]...)
		i += litLen
		if maxSize > 0 && len(dst)-base > maxSize {
			return dst, ErrTooLarge
		}
		if i == len(src) {
			return dst, nil // final literal-only sequence
		}
		// Match.
		if i+2 > len(src) {
			return dst, ErrCorrupt
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(dst)-base {
			return dst, ErrCorrupt
		}
		matchLen := int(token & 0x0F)
		if matchLen == 15 {
			var err error
			matchLen, i, err = readLength(src, i, matchLen)
			if err != nil {
				return dst, err
			}
		}
		matchLen += minMatch
		if maxSize > 0 && len(dst)-base+matchLen > maxSize {
			return dst, ErrTooLarge
		}
		// Overlapping copy, byte by byte (offsets < matchLen overlap).
		start := len(dst) - offset
		for k := 0; k < matchLen; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	return dst, nil
}

func readLength(src []byte, i, base int) (int, int, error) {
	n := base
	for {
		if i >= len(src) {
			return 0, i, ErrCorrupt
		}
		b := src[i]
		i++
		n += int(b)
		if b != 255 {
			return n, i, nil
		}
	}
}

// Ratio returns the space saving of compressing data: 1 - compressed/raw.
// Negative savings (expansion) clamp to 0, matching how the paper reports
// "compression ratio" per model (0% for incompressible parameters).
func Ratio(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	c := Compress(nil, data)
	r := 1 - float64(len(c))/float64(len(data))
	if r < 0 {
		return 0
	}
	return r
}

// MustRoundTrip panics unless data survives compress+decompress unchanged;
// used by harness self-checks.
func MustRoundTrip(data []byte) {
	c := Compress(nil, data)
	d, err := Decompress(nil, c, 0)
	if err != nil {
		panic(fmt.Sprintf("lz4: roundtrip decode failed: %v", err))
	}
	if len(d) != len(data) {
		panic(fmt.Sprintf("lz4: roundtrip length %d != %d", len(d), len(data)))
	}
	for i := range d {
		if d[i] != data[i] {
			panic(fmt.Sprintf("lz4: roundtrip mismatch at %d", i))
		}
	}
}
