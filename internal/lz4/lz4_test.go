package lz4

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	c := Compress(nil, data)
	d, err := Decompress(nil, c, 0)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(d, data) {
		t.Fatalf("roundtrip mismatch: %d vs %d bytes", len(d), len(data))
	}
	return c
}

func TestEmpty(t *testing.T) {
	c := Compress(nil, nil)
	if len(c) != 0 {
		t.Fatalf("empty input -> %d bytes", len(c))
	}
	d, err := Decompress(nil, c, 0)
	if err != nil || len(d) != 0 {
		t.Fatal("empty roundtrip")
	}
}

func TestTinyInputs(t *testing.T) {
	for n := 1; n < 32; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		roundTrip(t, data)
	}
}

func TestHighlyCompressible(t *testing.T) {
	data := bytes.Repeat([]byte("abcd"), 10000)
	c := roundTrip(t, data)
	if len(c) >= len(data)/10 {
		t.Fatalf("repetitive data compressed to %d/%d", len(c), len(data))
	}
	if Ratio(data) < 0.9 {
		t.Fatalf("ratio = %v", Ratio(data))
	}
}

func TestZeros(t *testing.T) {
	data := make([]byte, 100000)
	c := roundTrip(t, data)
	if len(c) >= 1000 {
		t.Fatalf("zeros compressed to %d", len(c))
	}
}

func TestIncompressibleRandom(t *testing.T) {
	data := make([]byte, 100000)
	rand.New(rand.NewSource(1)).Read(data)
	c := roundTrip(t, data)
	if len(c) > CompressBound(len(data)) {
		t.Fatalf("compressed %d > bound %d", len(c), CompressBound(len(data)))
	}
	if Ratio(data) > 0.01 {
		t.Fatalf("random data should not compress; ratio %v", Ratio(data))
	}
}

func TestText(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500))
	c := roundTrip(t, data)
	if float64(len(c)) > 0.2*float64(len(data)) {
		t.Fatalf("text compressed to only %d/%d", len(c), len(data))
	}
}

func TestLongMatchesAndLiterals(t *testing.T) {
	// Exercise the 15+ length extension paths on both sides.
	var data []byte
	rng := rand.New(rand.NewSource(2))
	lit := make([]byte, 1000) // 1000 literals (needs extension bytes)
	rng.Read(lit)
	data = append(data, lit...)
	data = append(data, bytes.Repeat([]byte{0xAB}, 5000)...) // long match
	data = append(data, lit...)                              // far back-reference
	roundTrip(t, data)
}

func TestOverlappingMatch(t *testing.T) {
	// Offset 1 with long match: the classic RLE-through-LZ4 case.
	data := append([]byte{7}, bytes.Repeat([]byte{7}, 300)...)
	roundTrip(t, data)
}

// TestParameterDataRatiosMatchTableVIII: FP32 parameter snapshots from a
// converged model are nearly incompressible (paper Table VIII: 0-5% for
// GPT-2/Albert/Bert), because mantissa bytes are high-entropy.
func TestParameterDataRatiosMatchTableVIII(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	params := make([]byte, 0, 400000)
	buf := make([]byte, 4)
	for i := 0; i < 100000; i++ {
		v := float32(rng.NormFloat64() * 0.05)
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		params = append(params, buf...)
	}
	r := Ratio(params)
	if r > 0.25 {
		t.Fatalf("trained-parameter ratio = %.3f, expect near-incompressible (paper: 0-5%%)", r)
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	good := Compress(nil, []byte(strings.Repeat("hello world ", 100)))
	cases := [][]byte{
		good[:1],
		{0x00, 0x01},            // literal-only with wrong trailing bytes... actually token 0x00 -> 0 literals then match with short offset
		{0xF0},                  // extended literal length, missing bytes
		{0x1F, 'a', 0x00, 0x00}, // zero offset
		{0x1F, 'a', 0x09, 0x00}, // offset beyond output
	}
	for i, c := range cases {
		if _, err := Decompress(nil, c, 0); err == nil {
			t.Errorf("case %d: corrupt input decoded successfully", i)
		}
	}
}

func TestDecompressSizeLimit(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 10000)
	c := Compress(nil, data)
	if _, err := Decompress(nil, c, 100); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if _, err := Decompress(nil, c, 10000); err != nil {
		t.Fatalf("exact limit should pass: %v", err)
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	c := Compress(nil, []byte("payload-payload-payload"))
	out, err := Decompress(prefix, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) || string(out[len(prefix):]) != "payload-payload-payload" {
		t.Fatalf("out = %q", out)
	}
}

func TestMustRoundTrip(t *testing.T) {
	MustRoundTrip([]byte("abcabcabcabcabcabc"))
	MustRoundTrip(nil)
}

// Property: every input round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		c := Compress(nil, data)
		d, err := Decompress(nil, c, 0)
		return err == nil && bytes.Equal(d, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: structured (word-patterned) inputs round-trip — catches match
// boundary bugs that purely random bytes rarely hit.
func TestStructuredRoundTripProperty(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n16)%8192 + 1
		data := make([]byte, 0, n*2)
		for len(data) < n {
			switch rng.Intn(3) {
			case 0: // run
				data = append(data, bytes.Repeat([]byte{byte(rng.Intn(4))}, rng.Intn(64)+1)...)
			case 1: // copy earlier slice
				if len(data) > 8 {
					s := rng.Intn(len(data) - 4)
					e := s + rng.Intn(len(data)-s)
					data = append(data, data[s:e]...)
				} else {
					data = append(data, byte(rng.Intn(256)))
				}
			default: // random bytes
				chunk := make([]byte, rng.Intn(32)+1)
				rng.Read(chunk)
				data = append(data, chunk...)
			}
		}
		c := Compress(nil, data)
		d, err := Decompress(nil, c, 0)
		return err == nil && bytes.Equal(d, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressBound(t *testing.T) {
	if CompressBound(0) < 1 || CompressBound(1000) <= 1000 {
		t.Fatal("bound must exceed input")
	}
}
