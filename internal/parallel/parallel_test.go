package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if Resolve(0) != runtime.GOMAXPROCS(0) || Resolve(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive workers must resolve to GOMAXPROCS")
	}
	if Resolve(7) != 7 {
		t.Fatal("explicit workers must pass through")
	}
	if HotResolve(0) != 1 || HotResolve(1) != 1 {
		t.Fatal("hot paths must default to serial")
	}
	if HotResolve(-1) != runtime.GOMAXPROCS(0) || HotResolve(5) != 5 {
		t.Fatal("hot-path resolution")
	}
}

func TestSeedIsolated(t *testing.T) {
	seen := map[int64]int{}
	for _, base := range []int64{0, 1, 42, -7} {
		for i := 0; i < 1000; i++ {
			seen[Seed(base, i)]++
		}
	}
	for s, c := range seen {
		if c > 1 {
			t.Fatalf("seed %d produced %d times — point streams not isolated", s, c)
		}
	}
	if Seed(42, 3) != Seed(42, 3) {
		t.Fatal("seeds must be deterministic")
	}
}

// TestRunDeterministicOrdering forces out-of-order completion and asserts
// results land at their point index.
func TestRunDeterministicOrdering(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 8} {
		out, err := Run(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			// Later points finish earlier.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunFirstErrorAbortsPool checks that a failing point cancels the rest,
// the lowest-indexed error is the one returned, and no goroutine leaks.
func TestRunFirstErrorAbortsPool(t *testing.T) {
	before := runtime.NumGoroutine()
	var started atomic.Int64
	_, err := Run(context.Background(), 4, 100, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 7 || i == 3 {
			return 0, fmt.Errorf("point %d failed", i)
		}
		select { // simulate work that honours cancellation
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	// Both 3 and 7 may fail depending on scheduling, but the reported error
	// must be the lowest-indexed one that actually failed; with 4 workers
	// point 3 always starts.
	if err.Error() != "point 3 failed" {
		t.Fatalf("error = %v, want the lowest-indexed failure", err)
	}
	if got := started.Load(); got == 100 {
		t.Fatal("pool ran every point despite an early failure")
	}
	waitForGoroutines(t, before)
}

func TestRunExternalCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(ctx, 4, 1000, func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			time.Sleep(time.Millisecond)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	<-done
	if ran.Load() == 1000 {
		t.Fatal("cancellation did not stop the sweep")
	}
	waitForGoroutines(t, before)
}

func TestRunSerialCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 1, 10, func(context.Context, int) (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("serial path ignored cancelled context: %v", err)
	}
}

// TestRunBoundsConcurrency verifies no more than `workers` points run at
// once.
func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Run(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(500 * time.Microsecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent points with %d workers", p, workers)
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	out, err := Run(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	out, err = Run(context.Background(), 4, -5, func(context.Context, int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("n=-5: out=%v err=%v", out, err)
	}
}

// TestChunkBoundariesWorkerIndependent is the chunking rule behind the
// bit-identity guarantee: boundaries depend only on n.
func TestChunkBoundariesWorkerIndependent(t *testing.T) {
	for _, n := range []int{0, 1, chunkQuantum - 1, chunkQuantum, chunkQuantum + 1, 5*chunkQuantum + 17} {
		var want [][2]int
		for c := 0; c < Chunks(n); c++ {
			lo, hi := chunkBounds(c, n)
			want = append(want, [2]int{lo, hi})
		}
		for _, workers := range []int{1, 2, 8} {
			got := make([][2]int, Chunks(n))
			var idx atomic.Int64
			ForChunks(workers, n, func(lo, hi int) {
				got[idx.Add(1)-1] = [2]int{lo, hi}
			})
			if workers == 1 && n > 0 {
				// Serial fast path runs one [0,n) span; that's fine for
				// element-wise fns. MapChunks must still chunk identically.
				continue
			}
			seen := map[[2]int]bool{}
			for _, b := range got {
				seen[b] = true
			}
			for _, b := range want {
				if n > 0 && !seen[b] {
					t.Fatalf("n=%d workers=%d: chunk %v missing (got %v)", n, workers, b, got)
				}
			}
		}
	}
}

func TestForChunksCoversEveryElementOnce(t *testing.T) {
	const n = 3*chunkQuantum + 123
	for _, workers := range []int{1, 2, 8} {
		marks := make([]int32, n)
		ForChunks(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("workers=%d: element %d visited %d times", workers, i, m)
			}
		}
	}
}

// TestMapChunksOrderAndExactReduction sums integers per chunk and combines
// in chunk order: the result must match a serial sum at every worker count.
func TestMapChunksOrderAndExactReduction(t *testing.T) {
	const n = 4*chunkQuantum + 77
	var want int64
	for i := 0; i < n; i++ {
		want += int64(i)
	}
	for _, workers := range []int{1, 2, 8} {
		parts := MapChunks(workers, n, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		})
		if len(parts) != Chunks(n) {
			t.Fatalf("workers=%d: %d parts, want %d", workers, len(parts), Chunks(n))
		}
		var got int64
		for _, p := range parts {
			got += p
		}
		if got != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, got, want)
		}
	}
}

func TestDoRunsEverything(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var a, b, c, d atomic.Int64
		Do(workers,
			func() { a.Add(1) }, func() { b.Add(1) },
			func() { c.Add(1) }, func() { d.Add(1) })
		if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 || d.Load() != 1 {
			t.Fatalf("workers=%d: closures ran %d/%d/%d/%d times", workers, a.Load(), b.Load(), c.Load(), d.Load())
		}
	}
}

func TestFirstIndexDeterministic(t *testing.T) {
	const n = 6*chunkQuantum + 9
	hits := map[int]bool{2*chunkQuantum + 5: true, 4 * chunkQuantum: true, n - 1: true}
	for _, workers := range []int{1, 2, 8} {
		got := FirstIndex(workers, n, func(i int) bool { return hits[i] })
		if got != 2*chunkQuantum+5 {
			t.Fatalf("workers=%d: first index %d, want %d", workers, got, 2*chunkQuantum+5)
		}
		if FirstIndex(workers, n, func(int) bool { return false }) != -1 {
			t.Fatalf("workers=%d: miss must return -1", workers)
		}
	}
}

// TestRunCtxReturnsImmediatelyOnCancel is the sweep-service contract: a
// cancelled sweep must not drain the grid, must not wait for a slow
// in-flight point, and must still release every worker with no goroutine
// leak once that point finishes.
func TestRunCtxReturnsImmediatelyOnCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int64
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	out, err := RunCtx(ctx, 4, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i < 4 {
			<-release // the first wave blocks far past the cancellation
		}
		return i, nil
	})
	returned := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled RunCtx must not expose partial results")
	}
	if returned > time.Second {
		t.Fatalf("RunCtx took %v to notice cancellation — it drained instead of returning", returned)
	}
	if started.Load() == 1000 {
		t.Fatal("cancellation did not stop the sweep")
	}
	close(release) // let the abandoned workers finish their point
	waitForGoroutines(t, before)
}

// TestRunCtxCleanCompletion: without cancellation RunCtx is Run.
func TestRunCtxCleanCompletion(t *testing.T) {
	before := runtime.NumGoroutine()
	out, err := RunCtx(context.Background(), 3, 50, func(_ context.Context, i int) (int, error) {
		return i * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	waitForGoroutines(t, before)
}

func TestGateAdmitsUpToSlots(t *testing.T) {
	g := NewGate(2, 4)
	ctx := context.Background()
	if err := g.Enter(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Enter(ctx); err != nil {
		t.Fatal(err)
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", g.InFlight())
	}
	g.Leave()
	g.Leave()
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after Leave, want 0", g.InFlight())
	}
}

// TestGateShedsBeyondQueue fills the slots and the queue and asserts the
// next caller is shed immediately with ErrSaturated, not blocked.
func TestGateShedsBeyondQueue(t *testing.T) {
	const slots, queue = 2, 3
	g := NewGate(slots, queue)
	ctx := context.Background()
	for i := 0; i < slots; i++ {
		if err := g.Enter(ctx); err != nil {
			t.Fatal(err)
		}
	}
	queuedErrs := make(chan error, queue)
	for i := 0; i < queue; i++ {
		go func() { queuedErrs <- g.Enter(ctx) }()
	}
	// Wait until all three are actually queued.
	deadline := time.Now().Add(2 * time.Second)
	for g.Queued() != queue {
		if time.Now().After(deadline) {
			t.Fatalf("Queued = %d, want %d", g.Queued(), queue)
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if err := g.Enter(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow Enter = %v, want ErrSaturated", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("shedding took %v — must be immediate", d)
	}
	// Draining the slots admits the queued callers.
	g.Leave()
	g.Leave()
	for i := 0; i < 2; i++ {
		if err := <-queuedErrs; err != nil {
			t.Fatal(err)
		}
	}
	g.Leave() // one of the admitted pair
	if err := <-queuedErrs; err != nil {
		t.Fatal(err)
	}
}

// TestGateQueuedCancellation: a queued caller whose deadline expires leaves
// the queue with ctx.Err() and frees its waiting place.
func TestGateQueuedCancellation(t *testing.T) {
	g := NewGate(1, 2)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Enter(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Enter = %v, want DeadlineExceeded", err)
	}
	if g.Queued() != 0 {
		t.Fatalf("Queued = %d after timeout, want 0", g.Queued())
	}
	g.Leave()
}

// waitForGoroutines asserts the goroutine count returns to (roughly) the
// pre-call level — the pool joins every worker before returning.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
		runtime.GC()
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}
