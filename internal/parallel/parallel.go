// Package parallel is the repo's one concurrency substrate: a bounded
// worker-pool sweep runner with deterministic result ordering, and chunked
// loop helpers for the intra-step hot paths (ADAM update, dirty-byte scan,
// CRC guards).
//
// The package enforces a determinism contract that every caller relies on
// and the determinism test harnesses assert end to end:
//
//   - Run stores each point's result at its point index, so the output
//     order is the grid order regardless of completion order, and on
//     failure it reports the error of the lowest-indexed failing point —
//     both independent of scheduling.
//   - ForChunks/MapChunks partition [0,n) into fixed-quantum chunks whose
//     boundaries depend only on n, never on the worker count, and MapChunks
//     returns per-chunk values in chunk order. A caller that combines chunk
//     results in that order therefore reduces in a schedule-independent
//     order; the hot paths only combine with exact operations (integer
//     counter addition, min-index) or run purely element-wise loops, so no
//     floating-point reduction order changes between workers=1 and
//     workers=N.
//   - Every point receives its own seed (Seed) so concurrent points never
//     share random state.
//
// Two worker-knob conventions coexist (see Resolve and HotResolve): the
// sweep runner treats workers <= 0 as GOMAXPROCS, while the hot-path
// helpers treat 0 as "serial" (so the zero-value config keeps today's
// single-threaded behavior) and negative as GOMAXPROCS. workers == 1 is
// always the inline serial fallback (no goroutines).
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps the sweep-runner workers knob to an effective worker
// count: non-positive selects GOMAXPROCS (the pool never oversubscribes
// scheduling threads by default), anything else is returned as-is.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// HotResolve maps the intra-step (hot-path) workers knob: 0 and 1 run the
// serial fallback — a zero value must leave single-threaded semantics and
// cost untouched — while a negative value selects GOMAXPROCS. The split
// from Resolve is deliberate: sweeps default to "all cores", per-step
// loops default to "off".
func HotResolve(workers int) int {
	switch {
	case workers < 0:
		return runtime.GOMAXPROCS(0)
	case workers == 0:
		return 1
	default:
		return workers
	}
}

// Seed derives an independent per-point RNG seed from a base seed and the
// point index with a SplitMix64 mix, so concurrent sweep points draw from
// disjoint, reproducible streams regardless of execution order.
func Seed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run executes fn(ctx, i) for every i in [0, n) on at most `workers`
// goroutines and returns the results indexed by i. The first error (by
// point index, not completion time) cancels the derived context, stops
// workers from starting new points, and is returned after every goroutine
// has exited — Run never leaks goroutines, even on error or cancellation.
// A canceled ctx aborts the sweep with ctx's error.
func Run[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		n = 0
	}
	out := make([]T, n)
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				v, err := fn(cctx, i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return out, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// RunCtx is Run with a hard cancellation guarantee for long-running grids:
// when ctx is cancelled it returns ctx.Err() immediately — without waiting
// for in-flight points to finish — instead of draining the rest of the
// grid. Workers stop picking up new points, finish (and discard) their
// current one, and exit on their own; the sweep service uses this so a
// request deadline is honoured even when a single grid point runs for
// seconds. On cancellation the returned slice is nil: in-flight points may
// still be writing into the abandoned result storage, so no partial results
// can be exposed. A clean completion returns exactly what Run returns.
func RunCtx[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		n = 0
	}
	workers = Resolve(workers)
	if workers <= 1 || n <= 1 {
		// The serial path checks ctx between points, so it already returns
		// promptly (point granularity) and has no workers to abandon.
		return Run(ctx, 1, n, fn)
	}
	type result struct {
		out []T
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := Run(ctx, workers, n, fn)
		done <- result{out, err}
	}()
	select {
	case r := <-done:
		return r.out, r.err
	case <-ctx.Done():
		// The inner Run observes the same ctx, stops dispatching, joins its
		// workers and sends on the buffered channel — no goroutine leaks,
		// the caller just doesn't wait for the join.
		return nil, ctx.Err()
	}
}

// ErrSaturated reports an admission queue at capacity: the work was shed,
// not queued. Callers translate it into back-pressure (the sweep service
// answers 503 with Retry-After).
var ErrSaturated = errors.New("parallel: admission queue saturated")

// Gate is a bounded admission queue: at most `slots` holders run at once
// and at most `queue` waiters block for a slot; anything beyond that is
// shed immediately with ErrSaturated. It is the load-shedding front door of
// the sweep service — compute never oversubscribes and waiting is bounded,
// so overload degrades into fast, explicit rejections instead of latency
// collapse.
type Gate struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

// NewGate builds a gate with `slots` concurrent holders (<= 0: GOMAXPROCS)
// and `queue` waiting places (< 0: 0, shed as soon as the slots are full).
func NewGate(slots, queue int) *Gate {
	if queue < 0 {
		queue = 0
	}
	return &Gate{
		slots:    make(chan struct{}, Resolve(slots)),
		maxQueue: int64(queue),
	}
}

// Enter claims a slot, waiting in the bounded queue if none is free. It
// returns ErrSaturated when the queue is full (load shed) and ctx.Err()
// when the caller's deadline expires while queued. A nil return must be
// paired with exactly one Leave.
func (g *Gate) Enter(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return ErrSaturated
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Leave releases a slot claimed by Enter.
func (g *Gate) Leave() { <-g.slots }

// InFlight returns the number of currently held slots.
func (g *Gate) InFlight() int { return len(g.slots) }

// Queued returns the number of callers blocked waiting for a slot.
func (g *Gate) Queued() int { return int(g.queued.Load()) }

// chunkQuantum is the fixed chunk size (in elements) of ForChunks and
// MapChunks. Boundaries are multiples of the quantum regardless of the
// worker count, which is what makes chunked reductions combine in a
// worker-count-independent order.
const chunkQuantum = 16384

// Chunks returns the number of fixed-quantum chunks covering [0, n).
func Chunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunkQuantum - 1) / chunkQuantum
}

// chunkBounds returns chunk c's half-open element range.
func chunkBounds(c, n int) (lo, hi int) {
	lo = c * chunkQuantum
	hi = lo + chunkQuantum
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ChunkBounds returns chunk c's half-open element range over [0, n). It is
// the exported form of the fixed-quantum partition: callers that combine
// per-chunk results (CRC chaining, distribution merges) index their scratch
// by c and reduce in ascending c, which depends only on n — never on the
// worker count.
func ChunkBounds(c, n int) (lo, hi int) { return chunkBounds(c, n) }

// ForChunks runs fn over fixed-quantum chunks of [0, n) on at most
// `workers` goroutines and returns when all chunks are done. fn must only
// touch elements in [lo, hi) — chunks are disjoint, so element-wise loops
// need no locking and produce bit-identical results at any worker count.
// workers <= 1 (or a single chunk) runs inline; the serial path is
// allocation-free (no wrapper closure), since it sits inside the trainer's
// zero-alloc steady-state step.
func ForChunks(workers, n int, fn func(lo, hi int)) {
	nc := Chunks(n)
	if w := HotResolve(workers); w <= 1 || nc <= 1 {
		for c := 0; c < nc; c++ {
			lo, hi := chunkBounds(c, n)
			fn(lo, hi)
		}
		return
	}
	ForChunksIndexed(workers, n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForChunksIndexed is ForChunks with the chunk index passed through: fn
// receives (c, lo, hi) where [lo, hi) = ChunkBounds(c, n). The index is
// what lets an epilogue write per-chunk partials (CRCs, scan hits, byte
// distributions) into preallocated slots and combine them later in chunk
// order without allocating — the fused ADAM pass is the canonical caller.
// The serial fast path still runs the whole range as chunk-granular calls,
// so per-chunk partial layouts are identical at every worker count.
func ForChunksIndexed(workers, n int, fn func(c, lo, hi int)) {
	nc := Chunks(n)
	workers = HotResolve(workers)
	if workers > nc {
		workers = nc
	}
	if workers <= 1 {
		for c := 0; c < nc; c++ {
			lo, hi := chunkBounds(c, n)
			fn(c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := chunkBounds(c, n)
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// MapChunks runs fn over fixed-quantum chunks of [0, n) on at most
// `workers` goroutines and returns the per-chunk values in chunk order.
// Combining them in slice order reduces in an order that depends only on
// n; with exact combine operations (integer adds, min) the result is
// bit-identical to a serial pass.
func MapChunks[T any](workers, n int, fn func(lo, hi int) T) []T {
	nc := Chunks(n)
	out := make([]T, nc)
	workers = HotResolve(workers)
	if workers > nc {
		workers = nc
	}
	if workers <= 1 {
		for c := 0; c < nc; c++ {
			lo, hi := chunkBounds(c, n)
			out[c] = fn(lo, hi)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := chunkBounds(c, n)
				out[c] = fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	return out
}

// Do runs the given closures on at most `workers` goroutines and waits for
// all of them — the tensor-granular fan-out the SDC guards use to checksum
// independent buffers concurrently.
func Do(workers int, fns ...func()) {
	workers = HotResolve(workers)
	if workers > len(fns) {
		workers = len(fns)
	}
	if workers <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				fns[i]()
			}
		}()
	}
	wg.Wait()
}

// FirstIndex returns the smallest i in [0, n) with pred(i) true, or -1.
// The parallel path evaluates fixed-quantum chunks concurrently and takes
// the minimum over per-chunk first hits, so the answer is the serial one
// regardless of scheduling (min is exact).
func FirstIndex(workers, n int, pred func(i int) bool) int {
	scan := func(lo, hi int) int {
		for i := lo; i < hi; i++ {
			if pred(i) {
				return i
			}
		}
		return -1
	}
	if HotResolve(workers) <= 1 || Chunks(n) <= 1 {
		return scan(0, n)
	}
	for _, hit := range MapChunks(workers, n, scan) {
		if hit >= 0 {
			return hit
		}
	}
	return -1
}
