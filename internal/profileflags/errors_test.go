package profileflags

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestStartCPUProfileUnwritablePath(t *testing.T) {
	c := &Config{CPU: filepath.Join(t.TempDir(), "no-such-dir", "cpu.out")}
	if _, err := c.Start(); err == nil {
		t.Fatal("Start succeeded with an unwritable CPU profile path")
	}
}

func TestStartTraceUnwritablePathCleansUpCPU(t *testing.T) {
	dir := t.TempDir()
	c := &Config{
		CPU:   filepath.Join(dir, "cpu.out"),
		Trace: filepath.Join(dir, "no-such-dir", "trace.out"),
	}
	if _, err := c.Start(); err == nil {
		t.Fatal("Start succeeded with an unwritable trace path")
	}
	// The failed Start must have stopped the CPU profile it had already
	// begun — otherwise this second profile cannot start.
	c2 := &Config{CPU: filepath.Join(dir, "cpu2.out")}
	stop, err := c2.Start()
	if err != nil {
		t.Fatalf("CPU profile left running by failed Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCPUProfilesRejected(t *testing.T) {
	dir := t.TempDir()
	first := &Config{CPU: filepath.Join(dir, "a.out")}
	stop, err := first.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	second := &Config{CPU: filepath.Join(dir, "b.out")}
	if _, err := second.Start(); err == nil {
		t.Fatal("second concurrent CPU profile accepted")
	} else if !strings.Contains(err.Error(), "cpu profile") {
		t.Fatalf("unexpected error %q", err)
	}
}

func TestStopMemProfileUnwritablePath(t *testing.T) {
	c := &Config{Mem: filepath.Join(t.TempDir(), "no-such-dir", "heap.out")}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop succeeded with an unwritable heap profile path")
	}
}
