package profileflags

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterAndStart(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", heap, "-trace", tr}); err != nil {
		t.Fatal(err)
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	s := 0
	for i := 0; i < 1e6; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap, tr} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestDisabledProfilesNoop(t *testing.T) {
	c := &Config{}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
