// Package profileflags registers the standard pprof/trace flags
// (-cpuprofile, -memprofile, -trace) on a flag set, so every command in the
// repo exposes the same profiling surface. See DESIGN.md "Profiling
// workflow" for how the profiles feed a perf investigation.
package profileflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config holds the destinations parsed from the flags; empty strings mean
// the corresponding profile is disabled.
type Config struct {
	CPU   string
	Mem   string
	Trace string
}

// Register declares -cpuprofile, -memprofile and -trace on fs (the default
// command-line flag set when nil) and returns the config the parsed values
// land in.
func Register(fs *flag.FlagSet) *Config {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &Config{}
	fs.StringVar(&c.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&c.Trace, "trace", "", "write a runtime execution trace to this file")
	return c
}

// Start begins the requested profiles and returns a stop function that
// flushes them; call it exactly once (defer it right after a successful
// Start). The heap profile is captured at stop time, after a GC, so it
// reflects live steady-state allocations.
func (c *Config) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if c.CPU != "" {
		if cpuF, err = os.Create(c.CPU); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if c.Trace != "" {
		if traceF, err = os.Create(c.Trace); err != nil {
			cleanup()
			return nil, err
		}
		if err = trace.Start(traceF); err != nil {
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if c.Mem == "" {
			return nil
		}
		f, err := os.Create(c.Mem)
		if err != nil {
			return err
		}
		runtime.GC() // report live objects, not garbage awaiting collection
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("heap profile: %w", err)
		}
		return f.Close()
	}, nil
}
