// Package zero simulates the ZeRO-Offload baseline: the five-phase training
// step of the paper's Figure 1, with the GPU-side gradient buffer, the
// CPU-side double-buffered parameter transfer, and bulk PCIe DMA. Its two
// exposure mechanisms are exactly the paper's two identified problems:
// coarse-grained transfers (buffer-granular gradient flushes that overlap
// only part of backward) and full-volume parameter pushes serialized after
// the ADAM pass.
package zero

import (
	"teco/internal/cpusim"
	"teco/internal/cxl"
	"teco/internal/gpusim"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
)

// Engine simulates ZeRO-Offload training steps.
type Engine struct {
	GPU *gpusim.GPU
	CPU *cpusim.CPU
	// LinkBandwidth is the effective DMA bandwidth over PCIe 3.0 x16.
	LinkBandwidth float64
	// OverlapFraction is the share of backward time the coarse
	// (buffer-flush-granular) gradient transfers overlap with.
	OverlapFraction float64
	// GradBufferBytes / ParamBufferBytes are the transfer granularities.
	GradBufferBytes  int64
	ParamBufferBytes int64
}

// NewEngine returns an engine with the calibrated defaults.
func NewEngine() *Engine {
	return &Engine{
		GPU:              gpusim.V100(),
		CPU:              cpusim.Xeon6120(),
		LinkBandwidth:    modelzoo.BaselineLinkBandwidth(),
		OverlapFraction:  modelzoo.BaselineOverlapFraction,
		GradBufferBytes:  modelzoo.GradBufferBytes,
		ParamBufferBytes: modelzoo.ParamBufferBytes,
	}
}

// Step simulates one training step and returns its critical-path breakdown.
func (e *Engine) Step(m modelzoo.Model, batch int) phases.StepResult {
	eng := sim.New()
	up := cxl.NewLink(eng, e.LinkBandwidth, 1<<20)   // GPU -> CPU (gradients)
	down := cxl.NewLink(eng, e.LinkBandwidth, 1<<20) // CPU -> GPU (parameters)

	fwd := e.GPU.ForwardTime(m, batch)
	bwd := e.GPU.BackwardTime(m, batch)
	bwdStart := fwd
	bwdEnd := fwd + bwd

	// Phase 2+3: backward produces gradients; the gradient buffer is
	// "periodically filled and flushed". Coarse granularity delays the
	// first flush: transfers effectively start only in the final
	// OverlapFraction of backward.
	delay := sim.Time(float64(bwd) * (1 - e.OverlapFraction))
	for _, ch := range e.GPU.GradientSchedule(m, batch) {
		ready := bwdStart + delay + sim.Time(float64(ch.ReadyAt)*e.OverlapFraction)
		up.Send(ready, int(ch.Bytes), 0)
	}
	gradDone := up.Fence(bwdEnd)
	gradExposed := gradDone - bwdEnd

	// Phase 4: clip on CPU once all gradients arrived.
	clip := e.CPU.ClipTime(m.Params)
	clipEnd := gradDone + clip

	// Phase 5a: full ADAM pass on CPU.
	adam := e.CPU.AdamTime(m.Params)
	adamEnd := clipEnd + adam

	// Phase 5b: double-buffered fill + transfer. Fill overlaps transfer
	// (two staging buffers), but nothing overlaps the ADAM pass — the
	// paper's "parameter transfer is largely exposed to the critical
	// path".
	remaining := m.ParamBytes()
	fillFree := [2]sim.Time{adamEnd, adamEnd}
	var paramDone sim.Time = adamEnd
	slot := 0
	for remaining > 0 {
		b := e.ParamBufferBytes
		if b > remaining {
			b = remaining
		}
		remaining -= b
		fillDone := fillFree[slot] + e.CPU.FillTime(b)
		_, done := down.Send(fillDone, int(b), 0)
		// The buffer slot frees when its transfer completes.
		fillFree[slot] = done
		slot = 1 - slot
		paramDone = done
	}
	paramExposed := paramDone - adamEnd

	return phases.StepResult{
		Variant: phases.ZeroOffload,
		Breakdown: phases.Breakdown{
			Fwd:  fwd,
			Bwd:  bwd,
			Grad: gradExposed,
			Clip: clip,
			Adam: adam,
			Prm:  paramExposed,
		},
		ParamLinkBytes: m.ParamBytes(),
		GradLinkBytes:  m.GradBytes(),
	}
}
