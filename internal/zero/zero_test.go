package zero

import (
	"testing"

	"teco/internal/modelzoo"
)

func TestStepBreakdownConsistency(t *testing.T) {
	e := NewEngine()
	for _, m := range modelzoo.EvaluationModels() {
		r := e.Step(m, 4)
		if r.Total() <= 0 {
			t.Fatalf("%s: non-positive total", m.Name)
		}
		if r.Fwd <= 0 || r.Bwd <= 0 || r.Clip <= 0 || r.Adam <= 0 {
			t.Fatalf("%s: empty phase in %v", m.Name, r.Breakdown)
		}
		if r.Grad < 0 || r.Prm < 0 {
			t.Fatalf("%s: negative exposure", m.Name)
		}
		if r.ParamLinkBytes != m.ParamBytes() || r.GradLinkBytes != m.GradBytes() {
			t.Fatalf("%s: link volumes wrong", m.Name)
		}
	}
}

// TestTableICalibration reproduces Table I: communication exposed on the
// critical path as a fraction of training time for Bert-large-cased.
// Paper: batch 4 -> 42.24%, 8 -> 37.87%, 16 -> 28.65%, 20 -> 25.95%.
// We assert the measured shape: the fractions are large, decrease
// monotonically with batch size, and land near the paper's values.
func TestTableICalibration(t *testing.T) {
	e := NewEngine()
	m := modelzoo.BertLargeCased()
	paper := map[int]float64{4: 0.4224, 8: 0.3787, 16: 0.2865, 20: 0.2595}
	var prev float64 = 1
	for _, b := range []int{4, 8, 16, 20} {
		r := e.Step(m, b)
		frac := r.CommFraction()
		if frac >= prev {
			t.Fatalf("batch %d: fraction %.3f did not decrease", b, frac)
		}
		prev = frac
		if diff := frac - paper[b]; diff < -0.12 || diff > 0.12 {
			t.Fatalf("batch %d: comm fraction %.3f too far from paper %.3f", b, frac, paper[b])
		}
	}
}

// TestParamTransferLargelyExposed: the paper's diagnosis — the parameter
// transfer is almost fully on the critical path in ZeRO-Offload.
func TestParamTransferLargelyExposed(t *testing.T) {
	e := NewEngine()
	m := modelzoo.BertLargeCased()
	r := e.Step(m, 4)
	fullXfer := float64(m.ParamBytes()) / e.LinkBandwidth
	exposed := r.Prm.Seconds()
	if exposed < 0.9*fullXfer {
		t.Fatalf("param exposure %.1fms < 90%% of full transfer %.1fms", exposed*1e3, fullXfer*1e3)
	}
}

// TestGradExposureShrinksWithBatch: more backward time hides more of the
// gradient transfer.
func TestGradExposureShrinksWithBatch(t *testing.T) {
	e := NewEngine()
	m := modelzoo.BertLargeCased()
	r4 := e.Step(m, 4)
	r16 := e.Step(m, 16)
	if r16.Grad >= r4.Grad {
		t.Fatalf("grad exposure did not shrink: b4=%v b16=%v", r4.Grad, r16.Grad)
	}
}

func TestOverlapFractionEffect(t *testing.T) {
	m := modelzoo.BertLargeCased()
	coarse := NewEngine()
	coarse.OverlapFraction = 0.25
	fine := NewEngine()
	fine.OverlapFraction = 1.0
	rc := coarse.Step(m, 8)
	rf := fine.Step(m, 8)
	if rf.Grad >= rc.Grad {
		t.Fatalf("finer overlap must expose less gradient time: %v vs %v", rf.Grad, rc.Grad)
	}
}

func TestGCNIIStep(t *testing.T) {
	e := NewEngine()
	g := modelzoo.GCNII()
	r1 := e.Step(g, 1)
	r2 := e.Step(g, 64)
	if r1.Total() != r2.Total() {
		t.Fatal("full-graph model must ignore batch")
	}
}

func TestSmallParamBufferStillCompletes(t *testing.T) {
	e := NewEngine()
	e.ParamBufferBytes = 1 << 20
	m := modelzoo.GPT2()
	r := e.Step(m, 4)
	if r.Prm <= 0 {
		t.Fatal("param phase must take time")
	}
}
