package zero

import (
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
)

// StepDPU simulates a ZeRO-Offload step with the one-step Delayed Parameter
// Update (paper §II-A): the CPU optimizer and the parameter transfer for
// step i overlap with the GPU compute of step i+1, which computes with
// parameters from step i-1.
//
// DPU's effectiveness "requires significantly large batch sizes to achieve
// enough arithmetic intensity on GPU": the steady-state step time is the
// max of the GPU chain and the CPU+transfer chain, so with small batches
// the CPU side dominates and the overlap buys little. DPU also "raises the
// risk of changing DL model convergence", which is why the paper's TECO
// avoids it; the numerical side of that risk can be explored with
// realtrain.Config's staleness knobs.
func (e *Engine) StepDPU(m modelzoo.Model, batch int) phases.StepResult {
	plain := e.Step(m, batch)

	// GPU chain: fwd + bwd + the exposed gradient tail (unchanged by DPU).
	gpuChain := plain.Fwd + plain.Bwd + plain.Grad
	// CPU chain: clip + ADAM + the parameter push, now off the GPU's
	// critical path.
	cpuChain := plain.Clip + plain.Adam + plain.Prm

	b := plain.Breakdown
	if gpuChain >= cpuChain {
		// GPU-bound steady state: CPU work fully hidden.
		b.Clip, b.Adam, b.Prm = 0, 0, 0
	} else {
		// CPU-bound: the GPU waits; attribute the exposed remainder to
		// the CPU phases proportionally, keeping the breakdown additive.
		exposed := cpuChain - gpuChain
		scale := float64(exposed) / float64(cpuChain)
		b.Clip = sim.Time(float64(plain.Clip) * scale)
		b.Adam = sim.Time(float64(plain.Adam) * scale)
		b.Prm = sim.Time(float64(plain.Prm) * scale)
	}
	return phases.StepResult{
		Variant:        phases.ZeroOffload,
		Breakdown:      b,
		ParamLinkBytes: plain.ParamLinkBytes,
		GradLinkBytes:  plain.GradLinkBytes,
	}
}
