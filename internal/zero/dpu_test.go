package zero

import (
	"testing"

	"teco/internal/modelzoo"
)

func TestDPUNeverSlower(t *testing.T) {
	e := NewEngine()
	for _, m := range modelzoo.EvaluationModels() {
		b := 4
		if m.FullGraphOnly {
			b = 1
		}
		plain := e.Step(m, b)
		dpu := e.StepDPU(m, b)
		if dpu.Total() > plain.Total() {
			t.Errorf("%s: DPU slower (%v > %v)", m.Name, dpu.Total(), plain.Total())
		}
	}
}

// TestDPUNeedsLargeBatch: the paper's point — DPU only fully hides the CPU
// side when GPU arithmetic intensity is high enough.
func TestDPUNeedsLargeBatch(t *testing.T) {
	e := NewEngine()
	m := modelzoo.BertLargeCased()

	small := e.StepDPU(m, 4)
	// At batch 4 the CPU chain is not fully hidden: CPU-phase exposure
	// remains on the critical path.
	if small.Clip+small.Adam+small.Prm == 0 {
		t.Fatal("batch 4 should leave CPU work exposed (low arithmetic intensity)")
	}

	large := e.StepDPU(m, 20)
	// At batch 20 the GPU chain dominates and the CPU side hides.
	if large.Clip+large.Adam+large.Prm != 0 {
		t.Fatalf("batch 20 should hide the CPU chain, exposed %v",
			large.Clip+large.Adam+large.Prm)
	}
}

// TestTECOBeatsDPUAtSmallBatch: even granting the baseline DPU (as the
// paper's evaluation does), TECO-Reduction still wins where it matters —
// small per-GPU batches.
func TestTECOBeatsDPUAtSmallBatch(t *testing.T) {
	e := NewEngine()
	m := modelzoo.BertLargeCased()
	dpu := e.StepDPU(m, 4)
	if dpu.Total() <= e.Step(m, 4).Total()/2 {
		t.Fatal("DPU benefit implausibly large")
	}
	// TECO comparison lives in internal/core tests; here just pin that
	// DPU does not erase the communication problem at batch 4.
	if dpu.CommExposed() == 0 && dpu.Adam == 0 {
		t.Fatal("DPU at batch 4 should not hide everything")
	}
}

func TestDPUBreakdownAdditive(t *testing.T) {
	e := NewEngine()
	m := modelzoo.T5Large()
	r := e.StepDPU(m, 8)
	sum := r.Fwd + r.Bwd + r.Grad + r.Clip + r.Adam + r.Prm
	if sum != r.Total() {
		t.Fatalf("breakdown not additive: %v vs %v", sum, r.Total())
	}
}
