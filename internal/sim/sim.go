// Package sim provides a small discrete-event simulation engine used by all
// timing models in the repository: the CXL link, the cache/coherence
// machinery, the GPU and CPU timing models, and the training schedules.
//
// Time is measured in integer picoseconds so that sub-nanosecond hardware
// latencies (e.g. the 1 ns Aggregator delay from the paper, §VIII-D) compose
// exactly with multi-millisecond kernel times without floating-point drift.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strconv"

	"teco/internal/conformance/check"
)

// Time is a simulated timestamp in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String renders the time with an adaptive unit for debugging output. Float
// formatting is pinned through strconv so the rendering is byte-identical
// across platforms and Go versions (the conformance goldens depend on it).
func (t Time) String() string {
	f3 := func(v float64, unit string) string {
		return strconv.FormatFloat(v, 'f', 3, 64) + unit
	}
	switch {
	case t >= Second:
		return f3(t.Seconds(), "s")
	case t >= Millisecond:
		return f3(t.Milliseconds(), "ms")
	case t >= Microsecond:
		return f3(float64(t)/float64(Microsecond), "us")
	case t >= Nanosecond:
		return f3(t.Nanoseconds(), "ns")
	default:
		return strconv.FormatInt(int64(t), 10) + "ps"
	}
}

// FromSeconds converts floating-point seconds to a Time, saturating instead
// of overflowing for durations beyond the representable range (~106 days).
func FromSeconds(s float64) Time {
	ps := s * float64(Second)
	if ps >= math.MaxInt64 {
		return Time(math.MaxInt64)
	}
	if ps <= 0 {
		return 0
	}
	return Time(ps)
}

// DurationForBytes returns the serialized transfer time of n bytes on a link
// sustaining bytesPerSecond, rounded up to a whole picosecond.
func DurationForBytes(n int64, bytesPerSecond float64) Time {
	if n <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	return FromSeconds(float64(n) / bytesPerSecond)
}

// Handler is the closure-free form of an event callback. Hot paths that
// schedule millions of events (the per-line stream simulator) implement it
// on a long-lived struct and schedule with AtHandler/AfterHandler, which
// recycle the Event through the engine's free list: steady-state scheduling
// then performs zero allocations (asserted by TestPooledSchedulingAllocs).
type Handler interface {
	// Fire is invoked when the event's time arrives; now is the firing
	// time. The handler may schedule further events.
	Fire(now Time)
}

// Event is a scheduled callback.
type Event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among simultaneous events
	fn    func()
	h     Handler // set instead of fn for pooled events
	index int     // heap index, -1 when popped/cancelled
	// pooled events return to the engine free list when they fire; they
	// are linked through next while free.
	pooled bool
	next   *Event
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// When returns the scheduled firing time.
func (e *Event) When() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engines are not safe for concurrent use;
// every simulation in this repository drives one engine from one goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
	// free is the head of the pooled-event free list (see AtHandler).
	free *Event
}

// New returns an empty engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (for tests/metrics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute time t. Scheduling in the past panics: that is
// always a modelling bug, not a recoverable condition.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn at now+d.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtHandler schedules h.Fire at absolute time t on a pooled event. The event
// is recycled into the engine's free list when it fires, so steady-state
// scheduling allocates nothing; because the event's lifetime ends inside
// Step, no handle is returned and pooled events cannot be cancelled. Like
// At, scheduling in the past panics.
func (e *Engine) AtHandler(t Time, h Handler) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &Event{pooled: true}
	}
	ev.at, ev.seq, ev.h = t, e.seq, h
	e.seq++
	heap.Push(&e.events, ev)
}

// AfterHandler schedules h.Fire at now+d on a pooled event.
func (e *Engine) AfterHandler(d Time, h Handler) {
	if d < 0 {
		d = 0
	}
	e.AtHandler(e.now+d, h)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -2
}

// Step fires the earliest pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	if check.Enabled() && ev.at < e.now {
		check.Failf("sim: event time %v before clock %v (monotonicity)", ev.at, e.now)
	}
	e.now = ev.at
	e.fired++
	if ev.pooled {
		// Recycle before firing so the handler can reschedule without
		// growing the pool.
		h, at := ev.h, ev.at
		ev.h = nil
		ev.next = e.free
		e.free = ev
		h.Fire(at)
		return true
	}
	ev.fn()
	return true
}

// Run fires events until the queue is empty and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// CheckInvariants validates the engine's internal consistency and returns
// the first violation, if any: the pending-event heap must be a min-heap on
// (time, seq) with correct back-indices, and no pending event may be
// scheduled before the current clock.
func (e *Engine) CheckInvariants() error {
	for i, ev := range e.events {
		if ev.index != i {
			return fmt.Errorf("sim: event at heap slot %d carries index %d", i, ev.index)
		}
		if ev.at < e.now {
			return fmt.Errorf("sim: pending event at %v before clock %v", ev.at, e.now)
		}
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < len(e.events) && e.events.Less(c, i) {
				return fmt.Errorf("sim: heap order violated between slots %d and %d", i, c)
			}
		}
	}
	return nil
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline if it has not yet passed it.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
