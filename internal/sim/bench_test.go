package sim

import "testing"

type nopHandler struct{ n int64 }

func (h *nopHandler) Fire(now Time) { h.n++ }

// BenchmarkPooledScheduling measures the steady-state pooled event loop:
// schedule + fire through the free list, closure-free. This is the event
// engine's hot path under per-line stream simulation.
func BenchmarkPooledScheduling(b *testing.B) {
	e := New()
	h := &nopHandler{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AtHandler(Time(i), h)
		e.Step()
	}
}

// BenchmarkClosureScheduling measures the original closure-based At path
// for comparison (one closure allocation per event).
func BenchmarkClosureScheduling(b *testing.B) {
	e := New()
	var n int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), func() { n++ })
		e.Step()
	}
}

// BenchmarkHeapChurn measures scheduling bursts of 128 events (the stream
// simulator's drain window) and draining them, exercising heap reordering.
func BenchmarkHeapChurn(b *testing.B) {
	e := New()
	h := &nopHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := Time(i) * 128
		for k := 0; k < 128; k++ {
			e.AtHandler(base+Time(127-k), h)
		}
		e.Run()
	}
}
