package sim

import (
	"testing"
)

// countHandler counts firings and optionally reschedules itself, modelling
// the steady-state event loop of the per-line stream simulator.
type countHandler struct {
	eng    *Engine
	fired  int
	times  []Time
	respan Time // when >0, reschedule respan after each firing, left times
	left   int
}

func (h *countHandler) Fire(now Time) {
	h.fired++
	if h.times != nil {
		h.times = append(h.times, now)
	}
	if h.left > 0 {
		h.left--
		h.eng.AfterHandler(h.respan, h)
	}
}

func TestHandlerSchedulingOrder(t *testing.T) {
	eng := New()
	h := &countHandler{eng: eng, times: make([]Time, 0, 8)}
	eng.AtHandler(30, h)
	eng.AtHandler(10, h)
	eng.AtHandler(20, h)
	if got := eng.Run(); got != 30 {
		t.Fatalf("Run ended at %v, want 30", got)
	}
	want := []Time{10, 20, 30}
	if len(h.times) != len(want) {
		t.Fatalf("fired %d events, want %d", len(h.times), len(want))
	}
	for i, w := range want {
		if h.times[i] != w {
			t.Fatalf("firing %d at %v, want %v", i, h.times[i], w)
		}
	}
}

func TestHandlerFIFOAmongSimultaneous(t *testing.T) {
	eng := New()
	var order []int
	a := &orderHandler{&order, 1}
	b := &orderHandler{&order, 2}
	c := &orderHandler{&order, 3}
	eng.AtHandler(5, a)
	eng.AtHandler(5, b)
	eng.AtHandler(5, c)
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("simultaneous pooled events fired in order %v, want [1 2 3]", order)
	}
}

type orderHandler struct {
	order *[]int
	id    int
}

func (h *orderHandler) Fire(Time) { *h.order = append(*h.order, h.id) }

// TestPooledSchedulingAllocs asserts the satellite requirement: once the
// pool and heap are warm, the schedule-fire cycle of the event loop runs at
// 0 allocs/op.
func TestPooledSchedulingAllocs(t *testing.T) {
	eng := New()
	h := &countHandler{eng: eng}
	// Warm-up: grow the heap backing array and the free list.
	for i := 0; i < 1024; i++ {
		eng.AtHandler(eng.Now()+Time(i), h)
	}
	eng.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		eng.AtHandler(eng.Now()+Nanosecond, h)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("pooled schedule+fire cycle allocates %.1f/op, want 0", allocs)
	}
}

// TestPooledRescheduleFromHandler exercises recycle-before-fire: a handler
// that reschedules itself must reuse the event it was fired from instead of
// growing the pool.
func TestPooledRescheduleFromHandler(t *testing.T) {
	eng := New()
	h := &countHandler{eng: eng, respan: Nanosecond, left: 1000}
	eng.AfterHandler(Nanosecond, h)
	end := eng.Run()
	if h.fired != 1001 {
		t.Fatalf("fired %d, want 1001", h.fired)
	}
	if end != 1001*Nanosecond {
		t.Fatalf("ended at %v, want %v", end, 1001*Nanosecond)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.left = 1
		eng.AfterHandler(Nanosecond, h)
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("self-rescheduling handler allocates %.1f/op, want 0", allocs)
	}
}

// TestPooledAndClosureEventsInterleave checks the two scheduling forms share
// one timeline and FIFO sequence space.
func TestPooledAndClosureEventsInterleave(t *testing.T) {
	eng := New()
	var order []int
	eng.At(5, func() { order = append(order, 1) })
	eng.AtHandler(5, &orderHandler{&order, 2})
	eng.At(5, func() { order = append(order, 3) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("mixed events fired in order %v, want [1 2 3]", order)
	}
}

func TestAtHandlerPastPanics(t *testing.T) {
	eng := New()
	eng.At(10, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("AtHandler in the past did not panic")
		}
	}()
	eng.AtHandler(5, &countHandler{eng: eng})
}
