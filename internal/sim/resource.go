package sim

// Server models a serial resource (a bus, a link, a pipelined unit) that
// services work items one after another in FIFO order. It is the building
// block for the CXL link model: "the updated cache lines ... are going
// through the link one after another in a stream manner" (paper §VIII-A).
type Server struct {
	eng *Engine
	// freeAt is the earliest time the resource can begin new work.
	freeAt Time
	// busy accumulates total service time, for utilization accounting.
	busy Time
}

// NewServer returns a serial server bound to eng.
func NewServer(eng *Engine) *Server {
	return &Server{eng: eng}
}

// Enqueue schedules a work item that takes service to process. The item
// begins at max(now, freeAt) and done (if non-nil) fires at completion.
// It returns the completion time.
func (s *Server) Enqueue(service Time, done func()) Time {
	start := s.eng.Now()
	if s.freeAt > start {
		start = s.freeAt
	}
	end := start + service
	s.freeAt = end
	s.busy += service
	if done != nil {
		s.eng.At(end, done)
	}
	return end
}

// EnqueueAt behaves like Enqueue but the item only becomes eligible at
// ready (which may be in the simulated future relative to Now).
func (s *Server) EnqueueAt(ready Time, service Time, done func()) Time {
	start := ready
	if s.freeAt > start {
		start = s.freeAt
	}
	end := start + service
	s.freeAt = end
	s.busy += service
	if done != nil {
		s.eng.At(end, done)
	}
	return end
}

// FreeAt returns the time the server drains all currently queued work.
func (s *Server) FreeAt() Time { return s.freeAt }

// BusyTime returns the cumulative service time processed.
func (s *Server) BusyTime() Time { return s.busy }

// Utilization returns busy time divided by elapsed, in [0, 1], measured at
// the engine's current clock.
func (s *Server) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	u := float64(s.busy) / float64(s.eng.Now())
	if u > 1 {
		u = 1
	}
	return u
}
