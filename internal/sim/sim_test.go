package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("second = %d ps", int64(Second))
	}
	if got := (2500 * Microsecond).Milliseconds(); got != 2.5 {
		t.Fatalf("Milliseconds = %v, want 2.5", got)
	}
	if got := (1500 * Picosecond).Nanoseconds(); got != 1.5 {
		t.Fatalf("Nanoseconds = %v, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
		{5 * Second, "5.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d ps => %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSecondsSaturates(t *testing.T) {
	if FromSeconds(1e30) <= 0 {
		t.Fatal("saturation should stay positive")
	}
	if FromSeconds(-1) != 0 {
		t.Fatal("negative seconds should clamp to 0")
	}
	if got, want := FromSeconds(1.5), 1500*Millisecond; got != want {
		t.Fatalf("FromSeconds(1.5) = %v, want %v", got, want)
	}
}

func TestDurationForBytes(t *testing.T) {
	// 16 GB/s, 64 bytes => 4 ns (paper §VIII-D: "each cache line takes
	// around 4 ns" on the CXL interface).
	got := DurationForBytes(64, 16e9)
	if got < 3900*Picosecond || got > 4100*Picosecond {
		t.Fatalf("64B @ 16GB/s = %v, want ~4ns", got)
	}
	if DurationForBytes(0, 16e9) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if DurationForBytes(64, 0) != 0 {
		t.Fatal("zero bandwidth treated as instantaneous (disabled link)")
	}
}

func TestEngineOrdering(t *testing.T) {
	eng := New()
	var order []int
	eng.At(30, func() { order = append(order, 3) })
	eng.At(10, func() { order = append(order, 1) })
	eng.At(20, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 30 {
		t.Fatalf("final time = %v", eng.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(5, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := New()
	hits := 0
	var chain func()
	chain = func() {
		hits++
		if hits < 5 {
			eng.After(10, chain)
		}
	}
	eng.After(10, chain)
	end := eng.Run()
	if hits != 5 {
		t.Fatalf("hits = %d", hits)
	}
	if end != 50 {
		t.Fatalf("end = %v, want 50", end)
	}
}

func TestEngineCancel(t *testing.T) {
	eng := New()
	fired := false
	ev := eng.At(10, func() { fired = true })
	eng.Cancel(ev)
	eng.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Double-cancel and cancel-after-fire must be no-ops.
	eng.Cancel(ev)
	ev2 := eng.At(eng.Now()+1, func() {})
	eng.Run()
	eng.Cancel(ev2)
}

func TestSchedulingInPastPanics(t *testing.T) {
	eng := New()
	eng.At(10, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	eng.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	eng := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		eng.At(at, func() { fired = append(fired, at) })
	}
	eng.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if eng.Now() != 25 {
		t.Fatalf("now = %v, want 25", eng.Now())
	}
	eng.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v, want all 4", fired)
	}
}

// Property: for any set of (time, id) pairs, the engine fires them in
// nondecreasing time order, FIFO within equal times.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		eng := New()
		var fired []Time
		for _, ti := range times {
			at := Time(ti)
			eng.At(at, func() { fired = append(fired, at) })
		}
		eng.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerSerialization(t *testing.T) {
	eng := New()
	srv := NewServer(eng)
	var done []Time
	// Three 10-unit jobs enqueued at t=0 must finish at 10, 20, 30.
	for i := 0; i < 3; i++ {
		srv.Enqueue(10, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if srv.BusyTime() != 30 {
		t.Fatalf("busy = %v", srv.BusyTime())
	}
	if u := srv.Utilization(); u != 1 {
		t.Fatalf("utilization = %v, want 1", u)
	}
}

func TestServerIdleGap(t *testing.T) {
	eng := New()
	srv := NewServer(eng)
	srv.Enqueue(10, nil)
	eng.At(50, func() {
		srv.Enqueue(10, nil)
	})
	eng.Run()
	if srv.FreeAt() != 60 {
		t.Fatalf("freeAt = %v, want 60 (idle gap respected)", srv.FreeAt())
	}
	if srv.BusyTime() != 20 {
		t.Fatalf("busy = %v, want 20", srv.BusyTime())
	}
}

func TestServerEnqueueAt(t *testing.T) {
	eng := New()
	srv := NewServer(eng)
	end := srv.EnqueueAt(100, 5, nil)
	if end != 105 {
		t.Fatalf("end = %v, want 105", end)
	}
	// A second item ready earlier still waits for the first.
	end2 := srv.EnqueueAt(50, 5, nil)
	if end2 != 110 {
		t.Fatalf("end2 = %v, want 110", end2)
	}
}

// Property: a serial server's completion times are exactly the prefix sums
// of service times when all work is enqueued up front.
func TestServerPrefixSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		eng := New()
		srv := NewServer(eng)
		var ends []Time
		for _, r := range raw {
			srv.Enqueue(Time(r), func() { ends = append(ends, eng.Now()) })
		}
		eng.Run()
		var sum Time
		for i, r := range raw {
			sum += Time(r)
			if ends[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineManyRandomEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng := New()
	const n = 10000
	var last Time
	ok := true
	for i := 0; i < n; i++ {
		at := Time(rng.Int63n(1_000_000))
		eng.At(at, func() {
			if eng.Now() < last {
				ok = false
			}
			last = eng.Now()
		})
	}
	eng.Run()
	if !ok {
		t.Fatal("time went backwards")
	}
	if eng.Fired() != n {
		t.Fatalf("fired = %d, want %d", eng.Fired(), n)
	}
}
