package modelzoo

import "testing"

// TestTableIIIGeometry pins the Table III rows.
func TestTableIIIGeometry(t *testing.T) {
	cases := []struct {
		m      Model
		params int64
		layers int
		hidden int
		cache  int64
	}{
		{GPT2(), 122e6, 12, 1024, 324},
		{AlbertXXLarge(), 223e6, 12, 4096, 547},
		{BertLargeCased(), 334e6, 24, 1024, 817},
		{T5Large(), 737e6, 48, 1024, 2069},
		{GCNII(), 156e6, 64, 1560, 400},
	}
	for _, c := range cases {
		if c.m.Params != c.params {
			t.Errorf("%s params = %d", c.m.Name, c.m.Params)
		}
		if c.m.Layers != c.layers || c.m.Hidden != c.hidden {
			t.Errorf("%s geometry = %d/%d", c.m.Name, c.m.Layers, c.m.Hidden)
		}
		if c.m.PaperGiantCacheMB != c.cache {
			t.Errorf("%s paper cache = %d", c.m.Name, c.m.PaperGiantCacheMB)
		}
	}
}

func TestFootprints(t *testing.T) {
	m := BertLargeCased()
	if m.ParamBytes() != 334e6*4 {
		t.Fatal("param bytes")
	}
	if m.GradBytes() != m.ParamBytes() {
		t.Fatal("FP32 gradients must match parameter volume")
	}
	if m.OptimizerStateBytes() != 2*m.ParamBytes() {
		t.Fatal("ADAM states are 2 words per param")
	}
	if m.GiantCacheBytes(GradBufferBytes) != m.ParamBytes()+GradBufferBytes {
		t.Fatal("giant cache = params + gradient buffer")
	}
}

func TestStepFLOPsScalesWithBatch(t *testing.T) {
	m := GPT2()
	f4 := m.StepFLOPs(4)
	f8 := m.StepFLOPs(8)
	if f8 != 2*f4 {
		t.Fatalf("flops must be linear in batch: %g vs %g", f4, f8)
	}
	// 6 * N * tokens.
	want := 6 * float64(m.Params) * 4 * float64(m.SeqLen)
	if f4 != want {
		t.Fatalf("flops = %g, want %g", f4, want)
	}
}

func TestGCNIIIgnoresBatch(t *testing.T) {
	g := GCNII()
	if !g.FullGraphOnly {
		t.Fatal("GCNII is full-graph only")
	}
	if g.StepFLOPs(4) != g.StepFLOPs(16) {
		t.Fatal("full-graph flops must not depend on batch")
	}
}

func TestAlbertComputeHeavierThanStored(t *testing.T) {
	a := AlbertXXLarge()
	if a.ComputeParams <= 5*a.Params {
		t.Fatal("ALBERT weight sharing: compute params must far exceed stored params")
	}
	// Albert has 4x the attention heads of GPT-2/Bert/T5 (paper).
	if a.Heads != 4*GPT2().Heads {
		t.Fatalf("Albert heads = %d, want 4x GPT-2's %d", a.Heads, GPT2().Heads)
	}
}

func TestSensitivitySizes(t *testing.T) {
	ms := SensitivityModels()
	if len(ms) != 4 {
		t.Fatal("four GPT-2 scales")
	}
	wants := []int64{122e6, 356e6, 778e6, 11e9}
	for i, w := range wants {
		if ms[i].Params != w {
			t.Errorf("scale %d params = %d, want %d", i, ms[i].Params, w)
		}
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Params <= ms[i-1].Params {
			t.Fatal("sizes must increase")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"GPT2", "Albert-xxlarge-v1", "Bert-large-cased", "T5-large", "GCNII", "GPT2-11B", "Bert-base-uncased"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) missing", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name must miss")
	}
}

func TestPerLayerParamBytes(t *testing.T) {
	m := BertLargeCased()
	if m.PerLayerParamBytes()*int64(m.Layers) > m.ParamBytes() {
		t.Fatal("layer split exceeds total")
	}
	if m.PerLayerParamBytes() <= 0 {
		t.Fatal("per-layer bytes must be positive")
	}
}

func TestKindStrings(t *testing.T) {
	if GPT2().Kind.String() != "transformer-decoder" {
		t.Fatal(GPT2().Kind.String())
	}
	if GCNII().Kind.String() != "gnn" {
		t.Fatal("gnn")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind renders")
	}
}

func TestBandwidthConstants(t *testing.T) {
	if CXLLinkBandwidth() <= BaselineLinkBandwidth() {
		t.Fatal("CXL must beat baseline DMA efficiency")
	}
	if CXLLinkBandwidth() != 16e9*0.943 {
		t.Fatalf("CXL bandwidth = %g", CXLLinkBandwidth())
	}
}

func TestModelString(t *testing.T) {
	if GPT2().String() == "" {
		t.Fatal("empty string")
	}
}

// TestT5Batch16OOM: §VIII-B — "We cannot evaluate T5-large with
// ZeRO-Offload when the batch size is 16, because it leads to an
// out-of-memory error" (32GB V100).
func TestT5Batch16OOM(t *testing.T) {
	t5 := T5Large()
	if !t5.FitsOnV100(8) {
		t.Fatal("T5 batch 8 must fit (the paper evaluates it)")
	}
	if t5.FitsOnV100(16) {
		t.Fatalf("T5 batch 16 should OOM (footprint %.1fGB)", float64(t5.GPUFootprintBytes(16))/(1<<30))
	}
}

// TestAllEvaluatedConfigsFit: every (model, batch) cell the paper reports
// must fit on the V100.
func TestAllEvaluatedConfigsFit(t *testing.T) {
	cells := []struct {
		m Model
		b []int
	}{
		{GPT2(), []int{4, 8, 16}},
		{AlbertXXLarge(), []int{4, 8, 16}},
		{BertLargeCased(), []int{4, 8, 16, 20}},
		{T5Large(), []int{4, 8}},
		{GCNII(), []int{1}},
	}
	for _, c := range cells {
		for _, b := range c.b {
			if !c.m.FitsOnV100(b) {
				t.Errorf("%s batch %d should fit (%.1fGB)", c.m.Name, b,
					float64(c.m.GPUFootprintBytes(b))/(1<<30))
			}
		}
	}
}

func TestMaxBatchOnV100(t *testing.T) {
	t5 := T5Large()
	mb := t5.MaxBatchOnV100(32)
	if mb < 8 || mb >= 16 {
		t.Fatalf("T5 max batch = %d, want in [8, 16)", mb)
	}
	if GCNII().MaxBatchOnV100(32) != 1 {
		t.Fatal("full-graph model max batch is 1")
	}
	// Footprint grows with batch.
	if t5.GPUFootprintBytes(8) <= t5.GPUFootprintBytes(4) {
		t.Fatal("footprint must grow with batch")
	}
}
