package modelzoo

// GPU memory-footprint model. ZeRO-Offload keeps all FP32 parameters and a
// gradient buffer on the GPU plus the activations of the current batch;
// the paper's V100 has 32 GB, which is why "we cannot evaluate T5-large
// with ZeRO-Offload when the batch size is 16, because it leads to an
// out-of-memory error".
const (
	// V100MemoryBytes is the evaluation GPU's capacity.
	V100MemoryBytes = 32 << 30

	// ActivationWordsPerHidden approximates the activation footprint per
	// (token, layer) in units of hidden-size FP32 words: attention/MLP
	// intermediates kept for backward (~28 words per hidden element with
	// standard checkpointing-free implementations).
	ActivationWordsPerHidden = 28

	// CUDARuntimeReserveBytes covers context, workspace, and fragmentation.
	CUDARuntimeReserveBytes = 2 << 30
)

// ActivationBytes estimates the activation memory for one training step,
// using the padded allocation length.
func (m Model) ActivationBytes(batch int) int64 {
	seq := m.AllocSeqLen
	if seq == 0 {
		seq = m.SeqLen
	}
	if m.FullGraphOnly {
		// Full-graph GNN: activations for every node at every layer.
		return int64(m.Layers) * int64(seq) * int64(m.Hidden) * 4 * ActivationWordsPerHidden / 8
	}
	tokens := int64(batch) * int64(seq)
	return tokens * int64(m.Layers) * int64(m.Hidden) * 4 * ActivationWordsPerHidden
}

// GPUFootprintBytes estimates total GPU memory under ZeRO-Offload:
// parameters (FP32), the gradient buffer, activations, and the runtime
// reserve. Optimizer states live on the CPU by construction.
func (m Model) GPUFootprintBytes(batch int) int64 {
	return m.ParamBytes() + GradBufferBytes + m.ActivationBytes(batch) + CUDARuntimeReserveBytes
}

// FitsOnV100 reports whether the configuration trains without OOM on the
// paper's 32 GB V100.
func (m Model) FitsOnV100(batch int) bool {
	return m.GPUFootprintBytes(batch) <= V100MemoryBytes
}

// MaxBatchOnV100 returns the largest batch size (up to limit) that fits.
func (m Model) MaxBatchOnV100(limit int) int {
	if m.FullGraphOnly {
		return 1
	}
	best := 0
	for b := 1; b <= limit; b++ {
		if m.FitsOnV100(b) {
			best = b
		}
	}
	return best
}
