// Package modelzoo defines the evaluated DL workloads (paper Table III) and
// the calibrated hardware constants every timing model shares. Geometry
// (parameter counts, layer counts, hidden sizes) comes straight from
// Table III; datasets are replaced by synthetic generators with the same
// tensor shapes (see DESIGN.md, substitutions).
package modelzoo

import "fmt"

// Kind labels the model architecture family.
type Kind int

const (
	// TransformerDecoder is a GPT-style decoder stack.
	TransformerDecoder Kind = iota
	// TransformerEncoder is a BERT-style encoder stack.
	TransformerEncoder
	// TransformerEncDec is a T5-style encoder-decoder.
	TransformerEncDec
	// GNN is a graph neural network (GCNII), full-graph training only.
	GNN
)

func (k Kind) String() string {
	switch k {
	case TransformerDecoder:
		return "transformer-decoder"
	case TransformerEncoder:
		return "transformer-encoder"
	case TransformerEncDec:
		return "transformer-encoder-decoder"
	case GNN:
		return "gnn"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Model is one workload row of Table III.
type Model struct {
	Name   string
	Kind   Kind
	Params int64 // stored parameters (transfer volume driver)
	// ComputeParams is the effective parameter count for FLOPs. It
	// differs from Params for ALBERT, whose layers share one stored
	// weight set but still execute 12 full-size blocks — the reason the
	// paper observes Albert "has 4x more attention heads, hence the
	// computation takes a larger portion of the total training time".
	ComputeParams int64
	Layers        int
	Hidden        int
	Heads         int
	// SeqLen is the *effective* fine-tuning token count per example used
	// for compute accounting (short fine-tuning inputs, attention
	// masking).
	SeqLen int
	// AllocSeqLen is the padded sequence length activations are
	// allocated for (memory accounting); 0 means SeqLen.
	AllocSeqLen int
	// FullGraphOnly marks GCNII, which "only supports full-graph
	// training" and ignores batch size.
	FullGraphOnly bool

	Dataset string
	Task    string
	Metric  string
	// PaperGiantCacheMB is Table III's "Giant cache size" column.
	PaperGiantCacheMB int64
}

// ParamBytes returns the FP32 parameter footprint in bytes — the CPU->GPU
// transfer volume per training step.
func (m Model) ParamBytes() int64 { return m.Params * 4 }

// GradBytes returns the FP32 gradient footprint — the GPU->CPU transfer
// volume per step (the paper's Fig 2(b) treats gradients as 4-byte floats).
func (m Model) GradBytes() int64 { return m.Params * 4 }

// OptimizerStateBytes returns the ADAM m+v footprint kept in CPU memory.
func (m Model) OptimizerStateBytes() int64 { return m.Params * 8 }

// GiantCacheBytes returns the giant-cache capacity TECO configures: all
// parameters plus the gradient buffer (paper §IV-A1).
func (m Model) GiantCacheBytes(gradBufferBytes int64) int64 {
	return m.ParamBytes() + gradBufferBytes
}

// StepFLOPs returns the forward+backward FLOPs for one step at the given
// batch size: the standard 6·N·T estimate (2 forward + 4 backward) over
// ComputeParams and batch*seqLen tokens. GCNII ignores batch.
func (m Model) StepFLOPs(batch int) float64 {
	if m.FullGraphOnly {
		// One full-graph pass over the whole parameter set.
		return 6 * float64(m.ComputeParams) * float64(m.SeqLen)
	}
	return 6 * float64(m.ComputeParams) * float64(batch) * float64(m.SeqLen)
}

// PerLayerParamBytes returns the parameter bytes attributed to one layer
// (embeddings folded in), the granularity of layer-wise scheduling.
func (m Model) PerLayerParamBytes() int64 {
	return m.ParamBytes() / int64(m.Layers)
}

func (m Model) String() string {
	return fmt.Sprintf("%s(%dM params, %d layers)", m.Name, m.Params/1e6, m.Layers)
}

// Table III models.

// GPT2 returns the 122M-parameter GPT-2 configuration.
func GPT2() Model {
	return Model{
		Name: "GPT2", Kind: TransformerDecoder,
		Params: 122e6, ComputeParams: 122e6,
		Layers: 12, Hidden: 1024, Heads: 12, SeqLen: 128,
		Dataset: "Wikitext", Task: "Language modeling", Metric: "Perplexity",
		PaperGiantCacheMB: 324,
	}
}

// GPT2Medium returns the 356M GPT-2 scale used in the sensitivity study.
func GPT2Medium() Model {
	m := GPT2()
	m.Name = "GPT2-Medium"
	m.Params, m.ComputeParams = 356e6, 356e6
	m.Layers, m.Hidden, m.Heads = 24, 1024, 16
	m.PaperGiantCacheMB = 0
	return m
}

// GPT2Large returns the 778M GPT-2 scale used in the sensitivity study.
func GPT2Large() Model {
	m := GPT2()
	m.Name = "GPT2-Large"
	m.Params, m.ComputeParams = 778e6, 778e6
	m.Layers, m.Hidden, m.Heads = 36, 1280, 20
	m.PaperGiantCacheMB = 0
	return m
}

// GPT2XXL11B returns the billion-scale GPT-2 variant ("11 billion
// parameters by changing the GPT-2 configurations", §VIII-E).
func GPT2XXL11B() Model {
	m := GPT2()
	m.Name = "GPT2-11B"
	m.Params, m.ComputeParams = 11e9, 11e9
	m.Layers, m.Hidden, m.Heads = 48, 4264, 32
	// Billion-scale GPT-2 configurations train on the model's full
	// context; the longer sequences make computation dominate ("the
	// computation time already accounts for 63.4% of the total time",
	// §VIII-E), which is why the 11B model shows the smallest speedup.
	m.SeqLen = 512
	m.PaperGiantCacheMB = 0
	return m
}

// AlbertXXLarge returns albert-xxlarge-v1: 223M stored (cross-layer
// sharing) but 12 executed blocks of hidden 4096 — roughly 2.4B effective
// compute parameters.
func AlbertXXLarge() Model {
	return Model{
		Name: "Albert-xxlarge-v1", Kind: TransformerEncoder,
		Params: 223e6, ComputeParams: 2400e6,
		Layers: 12, Hidden: 4096, Heads: 48, SeqLen: 128,
		Dataset: "Squad-v2", Task: "Question-answering", Metric: "F1/EM",
		PaperGiantCacheMB: 547,
	}
}

// BertLargeCased returns bert-large-cased (the motivation-study model).
func BertLargeCased() Model {
	return Model{
		Name: "Bert-large-cased", Kind: TransformerEncoder,
		Params: 334e6, ComputeParams: 334e6,
		Layers: 24, Hidden: 1024, Heads: 12, SeqLen: 128,
		Dataset: "IMDB", Task: "Text Classification", Metric: "Accuracy",
		PaperGiantCacheMB: 817,
	}
}

// BertBaseUncased returns bert-base-uncased (the Table VII comparison
// against ZeroQuant on GLUE-MNLI).
func BertBaseUncased() Model {
	return Model{
		Name: "Bert-base-uncased", Kind: TransformerEncoder,
		Params: 110e6, ComputeParams: 110e6,
		Layers: 12, Hidden: 768, Heads: 12, SeqLen: 128,
		Dataset: "GLUE-MNLI", Task: "NLI", Metric: "Accuracy",
	}
}

// T5Large returns t5-large.
func T5Large() Model {
	return Model{
		Name: "T5-large", Kind: TransformerEncDec,
		Params: 737e6, ComputeParams: 737e6,
		Layers: 48, Hidden: 1024, Heads: 12, SeqLen: 128,
		Dataset: "Wiki-summary", Task: "Summarization", Metric: "Gen-length",
		// Summarization pads encoder inputs to 512 tokens even though the
		// effective (non-masked) compute tokens are far fewer — this is
		// what drives the paper's out-of-memory at batch 16.
		AllocSeqLen:       512,
		PaperGiantCacheMB: 2069,
	}
}

// GCNII returns the graph neural network (full-graph training).
func GCNII() Model {
	return Model{
		Name: "GCNII", Kind: GNN,
		Params: 156e6, ComputeParams: 156e6,
		Layers: 64, Hidden: 1560, SeqLen: 64, FullGraphOnly: true,
		Dataset: "Wisconsin", Task: "Link prediction", Metric: "Accuracy",
		PaperGiantCacheMB: 400,
	}
}

// EvaluationModels returns the five Table III workloads in paper order.
func EvaluationModels() []Model {
	return []Model{GPT2(), AlbertXXLarge(), BertLargeCased(), T5Large(), GCNII()}
}

// SensitivityModels returns the Table VI GPT-2 scale sweep.
func SensitivityModels() []Model {
	return []Model{GPT2(), GPT2Medium(), GPT2Large(), GPT2XXL11B()}
}

// ByName looks a model up by its Table III name.
func ByName(name string) (Model, bool) {
	for _, m := range append(EvaluationModels(), append(SensitivityModels()[1:], BertBaseUncased())...) {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}
