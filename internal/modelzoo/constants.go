package modelzoo

// Hardware calibration constants — the single source of truth for every
// timing model in the repository (see DESIGN.md, "Timing-model
// calibration"). They are fitted so the ZeRO-Offload baseline reproduces
// the paper's Table I exposure fractions on Bert-large-cased, and then held
// fixed for every other experiment.
const (
	// PCIe3RawBandwidth is the PCIe 3.0 x16 bandwidth the testbed and the
	// emulator both assume (§VIII-A).
	PCIe3RawBandwidth = 16e9

	// BaselineDMAEfficiency is the fraction of raw PCIe bandwidth
	// ZeRO-Offload's cudaMemcpy-style bulk DMA sustains.
	BaselineDMAEfficiency = 0.80

	// CXLEfficiency is the fraction CXL sustains ("all data transfer
	// times over the CXL protocol are emulated by assuming to consume
	// 94.3% of PCIe bandwidth", §VIII-A).
	CXLEfficiency = 0.943

	// GPUEffectiveFLOPS is the V100's sustained training throughput for
	// the fine-tuning kernels (between FP32 peak and tensor-core peak,
	// at realistic utilization).
	GPUEffectiveFLOPS = 18e12

	// GPULaunchOverheadPerLayerMs is the fixed per-layer per-step cost
	// (kernel launches, small-kernel inefficiency) that keeps GPU time
	// from scaling linearly to zero at small batch sizes.
	GPULaunchOverheadPerLayerMs = 1.7

	// BackwardFraction is backward's share of fwd+bwd GPU time (backward
	// costs ~2x forward).
	BackwardFraction = 2.0 / 3.0

	// CPUMemBandwidth is the effective host memory bandwidth the
	// vectorized (AVX-512) optimizer sustains on the 48-core gem5
	// configuration.
	CPUMemBandwidth = 90e9

	// AdamBytesPerParam is the CPU ADAM memory traffic per parameter per
	// step: read param+grad+m+v, write param+m+v — 20 B of DRAM traffic
	// at cache-line granularity with streaming reuse.
	AdamBytesPerParam = 20

	// ClipBytesPerParam is the gradient-clipping traffic per parameter
	// (read for the norm, then read+write to scale).
	ClipBytesPerParam = 8

	// GradBufferBytes is ZeRO-Offload's GPU-side gradient buffer: the
	// flush granularity of baseline gradient transfers.
	GradBufferBytes = 32 << 20

	// ParamBufferBytes is one of ZeRO-Offload's two CPU-side parameter
	// staging buffers (double-buffer granularity).
	ParamBufferBytes = 64 << 20

	// BaselineOverlapFraction is the share of backward time that
	// coarse-grained (buffer-flush) gradient transfers manage to overlap
	// in ZeRO-Offload. Fine-grained TECO streaming overlaps with all of
	// backward — that difference is the paper's "coarse-grained tensor
	// transfer" problem.
	BaselineOverlapFraction = 0.5

	// CPUFillBandwidth is the rate at which the CPU fills a parameter
	// staging buffer (pure memcpy; "the buffer filling is much faster
	// than the parameter transfer").
	CPUFillBandwidth = 40e9
)

// BaselineLinkBandwidth returns ZeRO-Offload's effective PCIe bandwidth.
func BaselineLinkBandwidth() float64 { return PCIe3RawBandwidth * BaselineDMAEfficiency }

// CXLLinkBandwidth returns TECO's effective CXL bandwidth.
func CXLLinkBandwidth() float64 { return PCIe3RawBandwidth * CXLEfficiency }
