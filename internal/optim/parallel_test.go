package optim

import (
	"math"
	"math/rand"
	"testing"
)

// TestAdamParallelBitIdentical drives serial and parallel optimizers over
// the same gradient stream and requires bit-equal parameters and moments at
// every step — the optimizer half of the determinism contract.
func TestAdamParallelBitIdentical(t *testing.T) {
	const n = 40000 // > 2 chunks, with a ragged tail
	for _, workers := range []int{2, 8} {
		rng := rand.New(rand.NewSource(7))
		base := make([]float32, n)
		for i := range base {
			base[i] = rng.Float32()*2 - 1
		}
		pSer := append([]float32(nil), base...)
		pPar := append([]float32(nil), base...)
		ser := MustAdam(n, AdamConfig{LR: 1e-3, WeightDecay: 0.01})
		par := MustAdam(n, AdamConfig{LR: 1e-3, WeightDecay: 0.01, Workers: workers})
		grads := make([]float32, n)
		for step := 0; step < 5; step++ {
			for i := range grads {
				grads[i] = rng.Float32()*0.2 - 0.1
			}
			if err := ser.Step(pSer, grads); err != nil {
				t.Fatal(err)
			}
			if err := par.Step(pPar, grads); err != nil {
				t.Fatal(err)
			}
			for i := range pSer {
				if math.Float32bits(pSer[i]) != math.Float32bits(pPar[i]) {
					t.Fatalf("workers=%d step=%d: params diverge at %d: %08x vs %08x",
						workers, step, i, math.Float32bits(pSer[i]), math.Float32bits(pPar[i]))
				}
			}
			sm, sv := ser.Moments()
			pm, pv := par.Moments()
			for i := range sm {
				if math.Float32bits(sm[i]) != math.Float32bits(pm[i]) ||
					math.Float32bits(sv[i]) != math.Float32bits(pv[i]) {
					t.Fatalf("workers=%d step=%d: moments diverge at %d", workers, step, i)
				}
			}
		}
	}
}

func TestFirstNonFiniteWorkers(t *testing.T) {
	const n = 50000
	x := make([]float32, n)
	for _, workers := range []int{1, 2, 8} {
		if got := FirstNonFiniteWorkers(x, workers); got != -1 {
			t.Fatalf("workers=%d: clean vector returned %d", workers, got)
		}
	}
	// Plant hits in different chunks; the reported index must be the
	// smallest at every worker count.
	x[33000] = float32(math.Inf(1))
	x[17000] = float32(math.NaN())
	for _, workers := range []int{1, 2, 8} {
		if got := FirstNonFiniteWorkers(x, workers); got != 17000 {
			t.Fatalf("workers=%d: got %d, want 17000", workers, got)
		}
	}
}

func benchmarkAdamStep(b *testing.B, workers int) {
	const n = 1 << 20
	params := make([]float32, n)
	grads := make([]float32, n)
	rng := rand.New(rand.NewSource(1))
	for i := range params {
		params[i] = rng.Float32()
		grads[i] = rng.Float32() * 0.01
	}
	ad := MustAdam(n, AdamConfig{Workers: workers})
	b.SetBytes(int64(n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ad.Step(params, grads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdamStepSerial(b *testing.B)   { benchmarkAdamStep(b, 1) }
func BenchmarkAdamStepParallel(b *testing.B) { benchmarkAdamStep(b, -1) }
