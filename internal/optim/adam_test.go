package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	a := MustAdam(4, AdamConfig{})
	cfg := a.Config()
	if cfg.LR != 1e-3 || cfg.Beta1 != 0.9 || cfg.Beta2 != 0.999 || cfg.Eps != 1e-8 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if a.StateBytes() != 32 {
		t.Fatalf("state bytes = %d", a.StateBytes())
	}
}

func TestNewAdamRejectsBadSize(t *testing.T) {
	if _, err := NewAdam(0, AdamConfig{}); err == nil {
		t.Fatal("expected error for 0 parameters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdam must panic on invalid size")
		}
	}()
	MustAdam(-1, AdamConfig{})
}

func TestStepLengthMismatchErrors(t *testing.T) {
	a := MustAdam(4, AdamConfig{})
	if err := a.Step(make([]float32, 3), make([]float32, 4)); err == nil {
		t.Fatal("expected error for short params")
	}
	if err := a.Step(make([]float32, 4), make([]float32, 5)); err == nil {
		t.Fatal("expected error for long grads")
	}
	if a.StepCount() != 0 {
		t.Fatal("failed steps must not advance the step counter")
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	a := MustAdam(3, AdamConfig{LR: 0.05})
	p := []float32{1, 2, 3}
	for s := 0; s < 5; s++ {
		if err := a.Step(p, []float32{0.1, -0.2, 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	m, v := a.Moments()
	b := MustAdam(3, AdamConfig{LR: 0.05})
	if err := b.Restore(m, v, a.StepCount()); err != nil {
		t.Fatal(err)
	}
	// Both optimizers must now produce bit-identical updates.
	pa := []float32{4, 5, 6}
	pb := []float32{4, 5, 6}
	g := []float32{-0.5, 0.25, 0.125}
	a.Step(pa, g)
	b.Step(pb, g)
	for i := range pa {
		if math.Float32bits(pa[i]) != math.Float32bits(pb[i]) {
			t.Fatalf("restored optimizer diverged at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
	if err := b.Restore(m[:2], v, 5); err == nil {
		t.Fatal("expected error for short moment vector")
	}
	if err := b.Restore(m, v, -1); err == nil {
		t.Fatal("expected error for negative step")
	}
}

func TestFirstNonFinite(t *testing.T) {
	if i := FirstNonFinite([]float32{1, 2, 3}); i != -1 {
		t.Fatalf("clean vector reported index %d", i)
	}
	if i := FirstNonFinite([]float32{1, float32(math.NaN()), 3}); i != 1 {
		t.Fatalf("NaN index = %d, want 1", i)
	}
	if i := FirstNonFinite([]float32{float32(math.Inf(-1))}); i != 0 {
		t.Fatalf("Inf index = %d, want 0", i)
	}
}

// TestFirstStepMatchesHandComputation pins the exact first-step math.
func TestFirstStepMatchesHandComputation(t *testing.T) {
	a := MustAdam(1, AdamConfig{LR: 0.1})
	p := []float32{1.0}
	g := []float32{0.5}
	a.Step(p, g)
	// After bias correction, the first step is -lr * g/(|g|+eps) = -0.1.
	want := 1.0 - 0.1*0.5/(math.Sqrt(0.25)+1e-8)
	if math.Abs(float64(p[0])-want) > 1e-6 {
		t.Fatalf("p = %v, want %v", p[0], want)
	}
	if a.StepCount() != 1 {
		t.Fatal("step count")
	}
}

// TestConvergesOnQuadratic: ADAM must minimize a simple quadratic.
func TestConvergesOnQuadratic(t *testing.T) {
	a := MustAdam(3, AdamConfig{LR: 0.05})
	p := []float32{5, -3, 2}
	target := []float32{1, 1, 1}
	for i := 0; i < 2000; i++ {
		g := make([]float32, 3)
		for j := range p {
			g[j] = 2 * (p[j] - target[j])
		}
		a.Step(p, g)
	}
	for j := range p {
		if math.Abs(float64(p[j]-target[j])) > 1e-2 {
			t.Fatalf("p[%d] = %v, want ~1", j, p[j])
		}
	}
}

func TestWeightDecayShrinksParams(t *testing.T) {
	a := MustAdam(1, AdamConfig{LR: 0.01, WeightDecay: 0.1})
	p := []float32{10}
	g := []float32{0}
	before := p[0]
	a.Step(p, g)
	if p[0] >= before {
		t.Fatal("weight decay must shrink the parameter with zero gradient")
	}
}

func TestGlobalNorm(t *testing.T) {
	if n := GlobalNorm([]float32{3, 4}); math.Abs(n-5) > 1e-9 {
		t.Fatalf("norm = %v", n)
	}
	if GlobalNorm(nil) != 0 {
		t.Fatal("empty norm")
	}
}

func TestClipGlobalNorm(t *testing.T) {
	g := []float32{3, 4}
	pre := ClipGlobalNorm(g, 1.0)
	if math.Abs(pre-5) > 1e-9 {
		t.Fatalf("pre-clip norm = %v", pre)
	}
	if post := GlobalNorm(g); math.Abs(post-1) > 1e-6 {
		t.Fatalf("post-clip norm = %v", post)
	}
	// Under the cap: untouched.
	g2 := []float32{0.1, 0.1}
	ClipGlobalNorm(g2, 1.0)
	if g2[0] != 0.1 {
		t.Fatal("under-cap gradients must not be scaled")
	}
	// maxNorm <= 0 disables clipping.
	g3 := []float32{30, 40}
	ClipGlobalNorm(g3, 0)
	if g3[0] != 30 {
		t.Fatal("maxNorm=0 must disable clipping")
	}
	// Zero gradients never divide by zero.
	g4 := []float32{0, 0}
	ClipGlobalNorm(g4, 1)
}

// Property: after clipping to maxNorm, the norm never exceeds maxNorm
// (within FP32 rounding) and gradient directions are preserved.
func TestClipProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := make([]float32, 32)
		orig := make([]float32, 32)
		for i := range g {
			g[i] = float32(rng.NormFloat64() * 10)
			orig[i] = g[i]
		}
		ClipGlobalNorm(g, 1.0)
		if GlobalNorm(g) > 1.0+1e-4 {
			return false
		}
		// Direction preserved: same signs.
		for i := range g {
			if (g[i] > 0) != (orig[i] > 0) && g[i] != 0 && orig[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: an ADAM step moves each parameter opposite to its gradient on
// the first step (when m and v start at zero).
func TestFirstStepDirectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		a := MustAdam(n, AdamConfig{LR: 0.01})
		p := make([]float32, n)
		g := make([]float32, n)
		before := make([]float32, n)
		for i := range p {
			p[i] = float32(rng.NormFloat64())
			g[i] = float32(rng.NormFloat64())
			before[i] = p[i]
		}
		a.Step(p, g)
		for i := range p {
			if g[i] > 1e-6 && p[i] >= before[i] {
				return false
			}
			if g[i] < -1e-6 && p[i] <= before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The byte-change character of real ADAM fine-tuning updates: with a small
// LR, most changed parameters only change low mantissa bytes — the paper's
// Observation 2 emerging from the real optimizer.
func TestAdamUpdatesMostlyTouchLowBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 4096
	a := MustAdam(n, AdamConfig{LR: 1e-5})
	p := make([]float32, n)
	for i := range p {
		p[i] = float32(rng.NormFloat64())
	}
	// Warm up optimizer moments.
	for s := 0; s < 50; s++ {
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(rng.NormFloat64()) * 1e-3
		}
		a.Step(p, g)
	}
	prev := make([]float32, n)
	copy(prev, p)
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(rng.NormFloat64()) * 1e-3
	}
	a.Step(p, g)
	lowBytes := 0
	changed := 0
	for i := range p {
		x := math.Float32bits(prev[i]) ^ math.Float32bits(p[i])
		if x == 0 {
			continue
		}
		changed++
		if x&0xFFFF0000 == 0 {
			lowBytes++
		}
	}
	if changed == 0 {
		t.Fatal("no parameters changed")
	}
	frac := float64(lowBytes) / float64(changed)
	if frac < 0.5 {
		t.Fatalf("low-byte fraction = %.2f, expected the majority", frac)
	}
}
