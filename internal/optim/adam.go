// Package optim implements the numerical optimizer ZeRO-Offload runs on the
// CPU (paper Fig 1 phases 4-5): global-norm gradient clipping followed by
// the ADAM update. The math is bit-faithful FP32, because the DBA accuracy
// experiments depend on the real byte-level dynamics of the parameters.
package optim

import (
	"fmt"
	"math"

	"teco/internal/parallel"
)

// AdamConfig holds ADAM hyperparameters. Zero values select the PyTorch
// defaults used by the paper's fine-tuning recipes.
type AdamConfig struct {
	LR          float64 // learning rate (default 1e-3)
	Beta1       float64 // first-moment decay (default 0.9)
	Beta2       float64 // second-moment decay (default 0.999)
	Eps         float64 // numerical epsilon (default 1e-8)
	WeightDecay float64 // decoupled weight decay (default 0)
	// Workers runs the update over chunked goroutines (1 or 0: serial).
	// Purely a scheduling knob: the update is element-wise, so the result
	// is bit-identical at every worker count (asserted by the determinism
	// tests) and Workers is excluded from every config fingerprint.
	Workers int
}

func (c AdamConfig) withDefaults() AdamConfig {
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Eps == 0 {
		c.Eps = 1e-8
	}
	return c
}

// Adam is an ADAM optimizer instance over a flat parameter vector. The
// optimizer states (m, v) are what ZeRO-Offload keeps in CPU memory.
type Adam struct {
	cfg  AdamConfig
	m, v []float32
	step int
}

// NewAdam builds an optimizer for n parameters. A non-positive n is
// returned as an error so a corrupted restore fails cleanly instead of
// crashing the process.
func NewAdam(n int, cfg AdamConfig) (*Adam, error) {
	if n <= 0 {
		return nil, fmt.Errorf("optim: %d parameters", n)
	}
	return &Adam{cfg: cfg.withDefaults(), m: make([]float32, n), v: make([]float32, n)}, nil
}

// MustAdam is NewAdam for statically known-good sizes; it panics on an
// invalid size.
func MustAdam(n int, cfg AdamConfig) *Adam {
	a, err := NewAdam(n, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the effective (defaulted) configuration.
func (a *Adam) Config() AdamConfig { return a.cfg }

// StepCount returns the number of Step calls so far.
func (a *Adam) StepCount() int { return a.step }

// StateBytes returns the optimizer-state footprint in bytes (2 FP32 words
// per parameter), the quantity ZeRO-Offload offloads to CPU memory.
func (a *Adam) StateBytes() int64 { return int64(len(a.m)) * 8 }

// Step applies one ADAM update: params <- params - lr * m̂ / (sqrt(v̂)+eps).
// params and grads must have the optimizer's length; a mismatch (the
// signature of restoring a corrupted snapshot) is returned as an error
// before any state is touched.
func (a *Adam) Step(params, grads []float32) error {
	return a.StepFused(params, grads, 1, nil)
}

// StepFused is Step with the per-step tensor walks that surround the
// optimizer in a training loop folded into the same chunked pass, so the
// parameter, gradient and moment vectors are each traversed once per step
// instead of once per concern:
//
//   - scale != 1 first multiplies the chunk's gradients in place (the
//     global-norm clip's deferred scaling — the caller computes the norm,
//     the fused pass applies it), exactly as ClipGlobalNorm would have
//     before the update.
//   - epilogue, if non-nil, runs once per fixed-quantum chunk after that
//     chunk's elements are updated, with (c, lo, hi) as defined by
//     parallel.ChunkBounds. The trainer hangs its post-step scans there:
//     NaN/Inf guard, per-chunk tensor CRCs, dirty-byte distributions and
//     the previous-value copies. The epilogue may read params, grads and
//     the moment vectors within [lo, hi) only; chunks run concurrently, so
//     cross-chunk state must be per-chunk slots combined by the caller
//     afterwards (in ascending c for order-dependent folds like CRCs).
//
// Everything stays element-wise or chunk-local, so results are bit-identical
// to the unfused Step + separate passes at every worker count.
func (a *Adam) StepFused(params, grads []float32, scale float32, epilogue func(c, lo, hi int)) error {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		return fmt.Errorf("optim: step over %d/%d values, optimizer has %d", len(params), len(grads), len(a.m))
	}
	a.step++
	b1 := a.cfg.Beta1
	b2 := a.cfg.Beta2
	// Bias corrections.
	c1 := 1 - math.Pow(b1, float64(a.step))
	c2 := 1 - math.Pow(b2, float64(a.step))
	// The update is element-wise (no cross-element arithmetic), so chunked
	// goroutines over disjoint ranges produce the exact serial bits. The
	// serial path iterates the same chunk boundaries inline without
	// creating a closure — Step sits inside the trainer's zero-alloc
	// steady state.
	n := len(params)
	if nc := parallel.Chunks(n); parallel.HotResolve(a.cfg.Workers) <= 1 || nc <= 1 {
		for c := 0; c < nc; c++ {
			lo, hi := parallel.ChunkBounds(c, n)
			a.updateChunk(params, grads, scale, c1, c2, lo, hi)
			if epilogue != nil {
				epilogue(c, lo, hi)
			}
		}
		return nil
	}
	parallel.ForChunksIndexed(a.cfg.Workers, n, func(c, lo, hi int) {
		a.updateChunk(params, grads, scale, c1, c2, lo, hi)
		if epilogue != nil {
			epilogue(c, lo, hi)
		}
	})
	return nil
}

// updateChunk applies the deferred clip scale and the ADAM update to
// [lo, hi) — the chunk body both the serial and parallel paths of
// StepFused share.
func (a *Adam) updateChunk(params, grads []float32, scale float32, c1, c2 float64, lo, hi int) {
	b1 := a.cfg.Beta1
	b2 := a.cfg.Beta2
	lr := a.cfg.LR
	eps := a.cfg.Eps
	wd := a.cfg.WeightDecay
	if scale != 1 {
		for i := lo; i < hi; i++ {
			grads[i] *= scale
		}
	}
	for i := lo; i < hi; i++ {
		g := float64(grads[i])
		if wd != 0 {
			// Decoupled (AdamW-style) weight decay.
			params[i] -= float32(lr * wd * float64(params[i]))
		}
		m := b1*float64(a.m[i]) + (1-b1)*g
		v := b2*float64(a.v[i]) + (1-b2)*g*g
		a.m[i] = float32(m)
		a.v[i] = float32(v)
		mhat := m / c1
		vhat := v / c2
		params[i] -= float32(lr * mhat / (math.Sqrt(vhat) + eps))
	}
}

// Moments returns the live first/second moment vectors. Callers snapshot
// them by copying; mutating them corrupts the optimizer.
func (a *Adam) Moments() (m, v []float32) { return a.m, a.v }

// Restore overwrites the optimizer state from a checkpoint: moment vectors
// (copied in) and the step counter the bias corrections depend on. Length
// mismatches and negative step counts are rejected without touching state.
func (a *Adam) Restore(m, v []float32, step int) error {
	if len(m) != len(a.m) || len(v) != len(a.v) {
		return fmt.Errorf("optim: restore %d/%d moments into optimizer of %d", len(m), len(v), len(a.m))
	}
	if step < 0 {
		return fmt.Errorf("optim: restore negative step count %d", step)
	}
	copy(a.m, m)
	copy(a.v, v)
	a.step = step
	return nil
}

// FirstNonFinite returns the index of the first NaN or Inf in x, or -1.
// The trainer scans parameters and optimizer moments with it after each
// ADAM step: a NaN produced by ADAM on corrupted bytes is a silent-data-
// corruption signal that must trigger rollback, not propagate.
func FirstNonFinite(x []float32) int { return FirstNonFiniteWorkers(x, 1) }

// FirstNonFiniteWorkers is FirstNonFinite over chunked goroutines. The
// parallel path takes the minimum over per-chunk first hits, so the index
// returned is the serial one at every worker count.
func FirstNonFiniteWorkers(x []float32, workers int) int {
	return parallel.FirstIndex(workers, len(x), func(i int) bool {
		f := float64(x[i])
		return math.IsNaN(f) || math.IsInf(f, 0)
	})
}

// GlobalNorm returns the L2 norm of the gradient vector.
func GlobalNorm(grads []float32) float64 {
	var s float64
	for _, g := range grads {
		s += float64(g) * float64(g)
	}
	return math.Sqrt(s)
}

// ClipGlobalNorm scales grads in place so their L2 norm is at most maxNorm
// (paper Fig 1 phase 4: "the gradients are clipped to be bounded within a
// certain range on CPU"). It returns the pre-clip norm.
func ClipGlobalNorm(grads []float32, maxNorm float64) float64 {
	norm, scale := ClipScale(grads, maxNorm)
	if scale != 1 {
		for i := range grads {
			grads[i] *= scale
		}
	}
	return norm
}

// ClipScale is the deferred form of ClipGlobalNorm: it computes the global
// norm (the one cross-element reduction, which must complete before any
// element is scaled) and returns the clip factor to apply — 1 when no
// clipping is needed — without touching grads. StepFused applies the factor
// chunk-by-chunk inside the fused pass; the element-wise multiply commutes
// with chunking, so the result is bit-identical to ClipGlobalNorm + Step.
func ClipScale(grads []float32, maxNorm float64) (norm float64, scale float32) {
	norm = GlobalNorm(grads)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm, 1
	}
	return norm, float32(maxNorm / norm)
}
