package optim

import (
	"math"
	"math/rand"
	"testing"

	"teco/internal/checkpoint"
	"teco/internal/parallel"
)

// benchVectors sizes the fused-pass benchmark like the realtrain MLP
// (~136k parameters — several fixed-quantum chunks).
func benchVectors(n int) (params, grads []float32) {
	rng := rand.New(rand.NewSource(7))
	params = make([]float32, n)
	grads = make([]float32, n)
	for i := range params {
		params[i] = float32(rng.NormFloat64())
		grads[i] = float32(rng.NormFloat64()) * 1e-3
	}
	return
}

// BenchmarkFusedAdamScan measures the fused clip+ADAM+scan pass against
// the unfused sequence it replaced (clip walk, update walk, NaN-scan walk,
// CRC walk — four traversals versus one fused traversal plus the CRC the
// epilogue computes chunk-by-chunk). Both variants do the same logical
// work on the same data.
func BenchmarkFusedAdamScan(b *testing.B) {
	const n = 1 << 17
	run := func(b *testing.B, fused bool) {
		params, grads := benchVectors(n)
		a := MustAdam(n, AdamConfig{LR: 1e-5})
		nc := parallel.Chunks(n)
		nf := make([]int, nc)
		crc := make([]uint16, nc)
		epi := func(c, lo, hi int) {
			nf[c] = -1
			for i := lo; i < hi; i++ {
				f := float64(params[i])
				if math.IsNaN(f) || math.IsInf(f, 0) {
					nf[c] = i
					break
				}
			}
			crc[c] = checkpoint.ChecksumChunk(params[lo:hi])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fused {
				_, scale := ClipScale(grads, 1)
				if err := a.StepFused(params, grads, scale, epi); err != nil {
					b.Fatal(err)
				}
			} else {
				ClipGlobalNorm(grads, 1)
				if err := a.Step(params, grads); err != nil {
					b.Fatal(err)
				}
				if i := FirstNonFinite(params); i >= 0 {
					b.Fatalf("non-finite at %d", i)
				}
				_ = checkpoint.Checksum(params)
			}
		}
	}
	b.Run("fused", func(b *testing.B) { run(b, true) })
	b.Run("unfused", func(b *testing.B) { run(b, false) })
}

// TestStepFusedZeroAlloc pins the serial fused pass as allocation-free:
// it runs once per training step inside the trainer's zero-alloc steady
// state, so a closure or escape sneaking into StepFused would reintroduce
// per-step garbage.
func TestStepFusedZeroAlloc(t *testing.T) {
	const n = 1 << 15
	params, grads := benchVectors(n)
	a := MustAdam(n, AdamConfig{LR: 1e-5})
	nc := parallel.Chunks(n)
	crc := make([]uint16, nc)
	epi := func(c, lo, hi int) { crc[c] = checkpoint.ChecksumChunk(params[lo:hi]) }
	if err := a.StepFused(params, grads, 1, epi); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := a.StepFused(params, grads, 0.5, epi); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("serial StepFused allocates %.1f objects/op, want 0", allocs)
	}
}
