package diskcache

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"
)

// payloadFor derives a deterministic, key-dependent payload so any served
// entry can be verified against the key it was requested under.
func payloadFor(key uint64, n int) []byte {
	p := make([]byte, n)
	rng := rand.New(rand.NewSource(int64(key)))
	for i := range p {
		p[i] = byte(rng.Intn(256))
	}
	return p
}

// The size bound holds and eviction is least-recently-used: touching an old
// entry saves it, the untouched one goes first.
func TestLRUEvictionOrder(t *testing.T) {
	const payload = 1000
	wire := int64(payload + overhead)
	c := openTemp(t, Config{MaxBytes: 3 * wire})
	for key := uint64(1); key <= 3; key++ {
		if err := c.Put(key, payloadFor(key, payload)); err != nil {
			t.Fatal(err)
		}
	}
	// Recency now 3 > 2 > 1. Touch 1 so 2 becomes the LRU victim.
	if _, ok, _ := c.Get(1); !ok {
		t.Fatal("entry 1 missing before any eviction")
	}
	if err := c.Put(4, payloadFor(4, payload)); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[uint64]bool{1: true, 2: false, 3: true, 4: true} {
		if _, ok, _ := c.Get(key); ok != want {
			t.Fatalf("after eviction: key %d present=%v, want %v", key, ok, want)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictedBytes != wire {
		t.Fatalf("eviction stats: %+v", st)
	}
	if st.SizeBytes != 3*wire {
		t.Fatalf("size %d, want %d", st.SizeBytes, 3*wire)
	}
	if _, err := os.Stat(c.EntryPath(2)); !os.IsNotExist(err) {
		t.Fatalf("evicted entry file still on disk: %v", err)
	}
}

// A payload that cannot fit even in an empty cache is never stored and
// never evicts anything to try.
func TestLRUOversizePayloadSkipped(t *testing.T) {
	c := openTemp(t, Config{MaxBytes: 256})
	if err := c.Put(1, payloadFor(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(2, payloadFor(2, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(2); ok {
		t.Fatal("oversize payload was stored")
	}
	if _, ok, _ := c.Get(1); !ok {
		t.Fatal("oversize Put evicted an innocent entry")
	}
	st := c.Stats()
	if st.OversizePuts != 1 || st.Evictions != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// Reopening rebuilds sizes and recency from the directory: mtime order
// decides the victim, and a directory over a (newly shrunk) bound is
// trimmed back under it by Open itself.
func TestLRUReopenRebuildsRecency(t *testing.T) {
	dir := t.TempDir()
	const payload = 1000
	wire := int64(payload + overhead)
	c := openTemp(t, Config{Dir: dir, MaxBytes: 4 * wire})
	for key := uint64(1); key <= 3; key++ {
		if err := c.Put(key, payloadFor(key, payload)); err != nil {
			t.Fatal(err)
		}
		// Mtime granularity on some filesystems is coarse; space the
		// writes out so the recency rebuild sees a strict order.
		mt := time.Now().Add(time.Duration(key) * time.Hour)
		if err := os.Chtimes(c.EntryPath(key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	re := openTemp(t, Config{Dir: dir, MaxBytes: 3 * wire})
	if st := re.Stats(); st.SizeBytes != 3*wire || st.Evictions != 0 {
		t.Fatalf("reopen stats: %+v", st)
	}
	if err := re.Put(4, payloadFor(4, payload)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := re.Get(1); ok {
		t.Fatal("oldest entry survived the eviction")
	}
	if _, ok, _ := re.Get(3); !ok {
		t.Fatal("newest entry was evicted")
	}

	// Shrink the bound below the current footprint: Open trims.
	re.Close()
	small := openTemp(t, Config{Dir: dir, MaxBytes: wire})
	if st := small.Stats(); st.SizeBytes > wire || st.Evictions < 2 {
		t.Fatalf("open did not trim to the bound: %+v", st)
	}
}

func TestLRUNegativeBoundRejected(t *testing.T) {
	if _, err := Open(Config{Dir: t.TempDir(), MaxBytes: -1}); err == nil {
		t.Fatal("negative MaxBytes accepted")
	}
}

// The churn proof: concurrent writers and readers hammer a cache bounded to
// a fraction of the working set. Every Get must return either a miss or the
// exact payload for its key — never a wrong, partial, or torn entry — and
// the on-disk footprint must respect the bound once the dust settles.
func TestLRUChurnNeverServesWrongEntry(t *testing.T) {
	const (
		keys    = 64
		payload = 512
		writers = 4
		readers = 4
		rounds  = 200
	)
	wire := int64(payload + overhead)
	c := openTemp(t, Config{MaxBytes: keys / 4 * wire})

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				key := uint64(rng.Intn(keys) + 1)
				if err := c.Put(key, payloadFor(key, payload)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < rounds; i++ {
				key := uint64(rng.Intn(keys) + 1)
				got, ok, err := c.Get(key)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if ok && !bytes.Equal(got, payloadFor(key, payload)) {
					errs <- fmt.Errorf("reader %d: key %d served wrong bytes", r, key)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SizeBytes > keys/4*wire {
		t.Fatalf("size %d exceeds bound %d: %+v", st.SizeBytes, keys/4*wire, st)
	}
	if st.Evictions == 0 {
		t.Fatalf("churn at 4x the bound never evicted: %+v", st)
	}
	if st.CorruptDropped != 0 {
		t.Fatalf("churn corrupted entries: %+v", st)
	}
	// The index's idea of the footprint matches the directory's.
	var onDisk int64
	ents, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		onDisk += info.Size()
	}
	if onDisk != st.SizeBytes {
		t.Fatalf("on-disk %d bytes, index says %d", onDisk, st.SizeBytes)
	}
}
