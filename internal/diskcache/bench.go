package diskcache

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// Warm-lookup latency measurement for the perf gate (cmd/perfgate): the
// tecosimd hot path is "request hits a warm cache", so its p99 is a product
// guarantee and is gated in CI exactly like the stream microbenchmark.

// WarmLookupShape pins the measured workload so the baseline is comparable
// across runs: entry count, payload bytes per entry, and lookups timed.
const (
	WarmEntries      = 64
	WarmPayloadBytes = 4096
	WarmLookups      = 2000
)

// MeasureWarmLookupP99 fills a fresh cache under dir with WarmEntries
// entries of WarmPayloadBytes each, then times WarmLookups random warm Gets
// and returns the 99th-percentile latency in nanoseconds.
func MeasureWarmLookupP99(dir string) (int64, error) {
	c, err := Open(Config{Dir: dir})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	payload := make([]byte, WarmPayloadBytes)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	keys := make([]uint64, WarmEntries)
	for i := range keys {
		keys[i] = 0x9E3779B97F4A7C15 * uint64(i+1)
		// Each key owns distinct bytes (content-addressing requires it).
		payload[0] = byte(i)
		if err := c.Put(keys[i], payload); err != nil {
			return 0, err
		}
	}
	lat := make([]int64, WarmLookups)
	for i := range lat {
		k := keys[i%len(keys)]
		start := time.Now()
		payload, ok, err := c.Get(k)
		lat[i] = time.Since(start).Nanoseconds()
		if err != nil {
			return 0, err
		}
		if !ok || len(payload) != WarmPayloadBytes {
			return 0, fmt.Errorf("diskcache: warm lookup of %016x missed", k)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*99/100], nil
}

// MeasureWarmLookupP99Temp is MeasureWarmLookupP99 against a fresh
// temporary directory, removed afterwards.
func MeasureWarmLookupP99Temp() (int64, error) {
	dir, err := os.MkdirTemp("", "teco-cache-bench-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	return MeasureWarmLookupP99(dir)
}
