package diskcache

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"teco/internal/checkpoint"
)

// This file is the cache layer's fault-injection hook: the chaos harness
// configures a Faults plan and the cache routes every entry write/read
// through it. Four failure families are modeled — slow I/O, transient
// write errors, short (torn) writes, and an injected crash that stops a
// write dead at an exact byte offset — plus post-commit media corruption
// (bit flips and tail truncation) applied with the checkpoint subsystem's
// FlipBit/TruncateTail harness, so the same damage model proven against
// snapshots is proven against cache entries.

// ErrCrashed is the injected kill -9: a write stopped at an arbitrary byte
// with no cleanup. The cache never retries it — the simulated process is
// dead — and the harness "reboots" by calling Open on the same directory.
var ErrCrashed = errors.New("diskcache: injected crash mid-write")

// errInjected marks a transient injected failure (retried with backoff).
var errInjected = errors.New("diskcache: injected transient I/O error")

// Faults is a deterministic, seeded fault plan. Every Nth-style knob counts
// its own event stream; zero disables that family. Safe for concurrent use.
type Faults struct {
	mu  sync.Mutex
	rng *rand.Rand

	// Delay sleeps before every entry read and write — slow media.
	Delay time.Duration
	// WriteErrEvery fails every Nth write attempt with a transient error.
	WriteErrEvery int
	// ShortWriteEvery cuts every Nth write attempt roughly in half and then
	// fails it — a torn write the atomic rename must contain.
	ShortWriteEvery int
	// FlipBitEvery flips one random bit of every Nth committed entry —
	// silent media corruption that only the CRC can catch.
	FlipBitEvery int
	// TruncateEvery removes a random tail of every Nth committed entry.
	TruncateEvery int

	writes, commits int
	crashAfter      int64 // -1: disarmed; else stop the next write at this byte
	crashes         int
	flips, truncs   int
}

// NewFaults returns a fault plan with every family disabled; the caller
// arms the knobs it wants. The seed drives flip/truncate positions and
// short-write lengths.
func NewFaults(seed int64) *Faults {
	return &Faults{rng: rand.New(rand.NewSource(seed)), crashAfter: -1}
}

// CrashNextWriteAfter arms a one-shot crash: the next entry write stops
// after exactly n bytes and returns ErrCrashed, leaving the temp file in
// place exactly as kill -9 would.
func (f *Faults) CrashNextWriteAfter(n int64) {
	f.mu.Lock()
	f.crashAfter = n
	f.mu.Unlock()
}

// Crashes reports how many injected crashes fired.
func (f *Faults) Crashes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashes
}

// Corruptions reports committed-entry damage injected so far (flips,
// truncations).
func (f *Faults) Corruptions() (flips, truncations int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flips, f.truncs
}

// write pushes wire into f's failure model: full write, short write,
// transient error, or crash at a byte offset.
func (f *Faults) write(file *os.File, wire []byte) error {
	f.mu.Lock()
	if f.Delay > 0 {
		delay := f.Delay
		f.mu.Unlock()
		time.Sleep(delay)
		f.mu.Lock()
	}
	f.writes++
	if f.crashAfter >= 0 {
		n := f.crashAfter
		if n > int64(len(wire)) {
			n = int64(len(wire))
		}
		f.crashAfter = -1
		f.crashes++
		f.mu.Unlock()
		if n > 0 {
			file.Write(wire[:n]) // the bytes that made it out before death
			file.Sync()
		}
		return fmt.Errorf("%w (at byte %d of %d)", ErrCrashed, n, len(wire))
	}
	if f.WriteErrEvery > 0 && f.writes%f.WriteErrEvery == 0 {
		f.mu.Unlock()
		return fmt.Errorf("%w (write %s)", errInjected, file.Name())
	}
	if f.ShortWriteEvery > 0 && f.writes%f.ShortWriteEvery == 0 {
		cut := 1 + f.rng.Intn(len(wire))
		f.mu.Unlock()
		file.Write(wire[:cut])
		return fmt.Errorf("%w (short write: %d of %d bytes)", errInjected, cut, len(wire))
	}
	f.mu.Unlock()
	_, err := file.Write(wire)
	return err
}

// beforeRead applies the slow-I/O model to reads.
func (f *Faults) beforeRead() error {
	f.mu.Lock()
	delay := f.Delay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// afterCommit damages every Nth durably committed entry in place using the
// checkpoint corruption harness — the "disk rotted underneath us" case the
// CRC must catch on the next Get.
func (f *Faults) afterCommit(path string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.commits++
	if f.FlipBitEvery > 0 && f.commits%f.FlipBitEvery == 0 {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			if checkpoint.FlipBit(path, f.rng.Int63n(fi.Size()*8)) == nil {
				f.flips++
			}
		}
	}
	if f.TruncateEvery > 0 && f.commits%f.TruncateEvery == 0 {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			if checkpoint.TruncateTail(path, 1+f.rng.Int63n(fi.Size())) == nil {
				f.truncs++
			}
		}
	}
}
