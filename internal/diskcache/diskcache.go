// Package diskcache is a content-addressed, crash-safe on-disk result
// cache: the persistence layer behind the tecosimd sweep service. Every
// entry is keyed by a 64-bit config fingerprint (the same FNV-over-%+v
// scheme as realtrain's configTag and the checkpoint ConfigTag), stored in
// its own file whose wire image is CRC-16 framed exactly like a checkpoint
// section, and written with the full crash-durable sequence — temp file,
// fsync, rename into place, fsync of the parent directory — so a crash at
// any byte leaves either the old entry or no entry, never a torn one.
//
// Reads fail closed: any framing violation, bit flip or truncated tail is
// detected by the CRC, the damaged file is removed, and the lookup reports
// a miss so the caller transparently recomputes. Because entries are
// content-addressed (a key fully determines its payload), a recompute
// rewrites the identical bytes — corruption can cost a recompute, never a
// wrong answer. The chaos harness in internal/server proves both
// properties under kill -9 and injected media faults.
//
// Transient I/O errors are retried with bounded exponential backoff plus
// seeded jitter; injected crashes (Faults.CrashNextWriteAfter, the
// in-process stand-in for kill -9) are not retried — the "process" is dead.
package diskcache

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"teco/internal/cxl"
)

// Format constants. Version is bumped on any wire-image change; decoders
// reject versions they do not understand rather than guessing.
const (
	// Magic opens every entry file.
	Magic = "TECORSLT"
	// Version is the current entry format version.
	Version = 1
	// headerLen is magic + version(u16) + key(u64) + payload length(u32).
	headerLen = len(Magic) + 2 + 8 + 4
	// overhead is everything around the payload: header + trailing CRC-16.
	overhead = headerLen + 2
)

// ErrCorrupt reports an entry whose framing or CRC check failed. Get never
// returns it to callers — the entry is dropped and the lookup misses — but
// decode surfaces it for the corruption tests.
var ErrCorrupt = errors.New("diskcache: corrupt entry")

// DefaultMaxRetries bounds the retry loop around entry I/O when Config
// leaves it zero.
const DefaultMaxRetries = 4

// DefaultRetryBase is the initial backoff step when Config leaves it zero;
// attempt k sleeps base<<k plus up to 50% seeded jitter.
const DefaultRetryBase = time.Millisecond

// Config parameterizes Open.
type Config struct {
	// Dir is the cache directory, created if needed.
	Dir string
	// MaxRetries bounds retries of transient entry I/O failures
	// (0: DefaultMaxRetries).
	MaxRetries int
	// RetryBase is the initial backoff step (0: DefaultRetryBase).
	RetryBase time.Duration
	// RetrySeed seeds the backoff jitter stream.
	RetrySeed int64
	// MaxBytes bounds the cache's on-disk footprint (entry files, framing
	// included). When a Put would push past it, least-recently-used entries
	// are evicted first; a payload too large to ever fit is not stored at
	// all. 0 means unbounded.
	MaxBytes int64
	// Faults optionally injects I/O failures — the chaos harness's handle
	// on the cache. Nil runs clean.
	Faults *Faults
}

// Stats are the cache's cumulative counters, all monotone.
type Stats struct {
	// Hits and Misses count Get outcomes; a corrupt entry counts as a miss.
	Hits, Misses int64
	// Puts counts durably completed writes; PutNoops counts Puts that found
	// the entry already present (content-addressed entries are immutable,
	// so rewriting identical bytes is skipped).
	Puts, PutNoops int64
	// CorruptDropped counts entries whose CRC/framing check failed on Get;
	// each was removed and reported as a miss, never served.
	CorruptDropped int64
	// Retries counts transient I/O attempts that were retried.
	Retries int64
	// TempSwept counts leftover temp files removed by Open — the residue of
	// crashes mid-write.
	TempSwept int64
	// Evictions and EvictedBytes count entries (and their on-disk bytes)
	// removed to respect Config.MaxBytes; OversizePuts counts payloads never
	// stored because they could not fit even in an empty cache.
	Evictions, EvictedBytes, OversizePuts int64
	// SizeBytes is the current on-disk footprint of all live entries — the
	// one gauge among these counters.
	SizeBytes int64
}

// Cache is a handle on one cache directory. It is safe for concurrent use.
type Cache struct {
	dir        string
	maxRetries int
	retryBase  time.Duration
	maxBytes   int64
	faults     *Faults

	jitterMu sync.Mutex
	jitter   *rand.Rand

	hits, misses, puts, putNoops atomic.Int64
	corrupt, retries             atomic.Int64
	evictions, evictedBytes      atomic.Int64
	oversize                     atomic.Int64
	tempSwept                    int64

	indexMu   sync.Mutex
	index     map[uint64]*entry // keys believed present (advisory)
	lru       *list.List        // front = most recently used; values are uint64 keys
	sizeBytes int64             // on-disk bytes of all indexed entries
}

// entry is the index's per-key record: the entry file's size and its slot
// in the recency list.
type entry struct {
	size int64
	elem *list.Element
}

// Open opens (creating if needed) a cache directory, sweeps temp files left
// by crashed writers, and builds the in-memory key index from the directory
// listing. There is deliberately no separate index file: the directory is
// the index, so there is nothing extra to tear in a crash, and recency is
// rebuilt from file modification times (oldest = least recently used).
// Entries are validated lazily — Get CRC-checks every byte it serves. A
// directory over Config.MaxBytes (the bound shrank, or a crash landed
// between an eviction and its write) is trimmed back under it here.
func Open(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, errors.New("diskcache: empty cache directory")
	}
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("diskcache: negative size bound %d", cfg.MaxBytes)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: create dir: %w", err)
	}
	c := &Cache{
		dir:        cfg.Dir,
		maxRetries: cfg.MaxRetries,
		retryBase:  cfg.RetryBase,
		maxBytes:   cfg.MaxBytes,
		faults:     cfg.Faults,
		jitter:     rand.New(rand.NewSource(cfg.RetrySeed)),
		index:      make(map[uint64]*entry),
		lru:        list.New(),
	}
	if c.maxRetries <= 0 {
		c.maxRetries = DefaultMaxRetries
	}
	if c.retryBase <= 0 {
		c.retryBase = DefaultRetryBase
	}
	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: scan dir: %w", err)
	}
	type found struct {
		key   uint64
		size  int64
		mtime time.Time
	}
	var live []found
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, ".res-") && strings.HasSuffix(name, ".tmp"):
			// A writer died between CreateTemp and rename; the live
			// namespace never saw the entry, so the residue is garbage.
			os.Remove(filepath.Join(cfg.Dir, name))
			c.tempSwept++
		case strings.HasPrefix(name, "res-") && strings.HasSuffix(name, ".teco"):
			key, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "res-"), ".teco"), 16, 64)
			if err != nil {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue // raced with a concurrent eviction; not indexed
			}
			live = append(live, found{key, info.Size(), info.ModTime()})
		}
	}
	// Oldest first, name as the tiebreak, so inserting in order leaves the
	// newest entry at the recency front deterministically.
	sort.Slice(live, func(i, j int) bool {
		if !live[i].mtime.Equal(live[j].mtime) {
			return live[i].mtime.Before(live[j].mtime)
		}
		return live[i].key < live[j].key
	})
	for _, f := range live {
		c.index[f.key] = &entry{size: f.size, elem: c.lru.PushFront(f.key)}
		c.sizeBytes += f.size
	}
	if err := c.evictFor(0); err != nil {
		return nil, fmt.Errorf("diskcache: trim to size bound: %w", err)
	}
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Len returns the number of keys believed present.
func (c *Cache) Len() int {
	c.indexMu.Lock()
	defer c.indexMu.Unlock()
	return len(c.index)
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	c.indexMu.Lock()
	size := c.sizeBytes
	c.indexMu.Unlock()
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Puts:           c.puts.Load(),
		PutNoops:       c.putNoops.Load(),
		CorruptDropped: c.corrupt.Load(),
		Retries:        c.retries.Load(),
		TempSwept:      c.tempSwept,
		Evictions:      c.evictions.Load(),
		EvictedBytes:   c.evictedBytes.Load(),
		OversizePuts:   c.oversize.Load(),
		SizeBytes:      size,
	}
}

// EntryPath returns the file a key lives in — the handle the chaos harness
// hands to checkpoint.FlipBit / checkpoint.TruncateTail.
func (c *Cache) EntryPath(key uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("res-%016x.teco", key))
}

// Get returns the payload stored under key. A missing entry is (nil, false,
// nil). A corrupt entry — flipped bit, truncated tail, torn frame — is
// detected by CRC, removed, counted in Stats.CorruptDropped, and reported
// as a miss so the caller recomputes; it is never served.
func (c *Cache) Get(key uint64) ([]byte, bool, error) {
	path := c.EntryPath(key)
	var buf []byte
	err := c.withRetry(func() error {
		var err error
		buf, err = c.readFile(path)
		return err
	})
	if err != nil {
		if os.IsNotExist(err) {
			c.misses.Add(1)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("diskcache: get %016x: %w", key, err)
	}
	payload, err := decode(buf, key)
	if err != nil {
		// Fail closed: drop the damaged file so the next Put rewrites it,
		// and report a miss. The payload bytes never leave this function.
		os.Remove(path)
		c.indexMu.Lock()
		c.dropLocked(key)
		c.indexMu.Unlock()
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false, nil
	}
	c.indexMu.Lock()
	if e, ok := c.index[key]; ok {
		c.lru.MoveToFront(e.elem)
	}
	c.indexMu.Unlock()
	c.hits.Add(1)
	return payload, true, nil
}

// Put durably stores payload under key using the crash-safe sequence:
// write to a temp file, fsync it, rename into place, fsync the directory.
// An entry that already exists and verifies is left untouched (the cache is
// content-addressed — equal key means equal bytes). Transient I/O errors
// are retried with backoff; an injected crash aborts immediately, leaving
// at most a temp file that the next Open sweeps.
func (c *Cache) Put(key uint64, payload []byte) error {
	if existing, ok, _ := c.Get(key); ok {
		// Get already CRC-verified the entry. Equal keys must carry equal
		// bytes; a mismatch means the keying upstream is broken, which must
		// surface loudly rather than silently serve either version.
		if string(existing) != string(payload) {
			return fmt.Errorf("diskcache: put %016x: existing entry differs from new payload (non-canonical key derivation?)", key)
		}
		c.putNoops.Add(1)
		return nil
	}
	wire := encode(key, payload)
	if c.maxBytes > 0 && int64(len(wire)) > c.maxBytes {
		// Storing it would evict everything and still blow the bound; the
		// caller simply recomputes on every lookup.
		c.oversize.Add(1)
		return nil
	}
	// Make room first: evictions are removed and made durable before the
	// new entry's rename, so a crash at any point leaves the directory
	// within the bound (modulo the entry being written, which the next
	// Open's trim covers).
	if err := c.evictFor(int64(len(wire))); err != nil {
		return fmt.Errorf("diskcache: put %016x: evict: %w", key, err)
	}
	err := c.withRetry(func() error { return c.writeEntry(key, wire) })
	if err != nil {
		return fmt.Errorf("diskcache: put %016x: %w", key, err)
	}
	c.indexMu.Lock()
	if e, ok := c.index[key]; ok {
		// Raced with a concurrent Put of the same key: keep one record.
		c.sizeBytes += int64(len(wire)) - e.size
		e.size = int64(len(wire))
		c.lru.MoveToFront(e.elem)
	} else {
		c.index[key] = &entry{size: int64(len(wire)), elem: c.lru.PushFront(key)}
		c.sizeBytes += int64(len(wire))
	}
	c.indexMu.Unlock()
	// Concurrent Puts may each have seen room for their own entry; a final
	// trim restores the bound (the fresh entry sits at the recency front,
	// so it is the last possible victim).
	if err := c.evictFor(0); err != nil {
		return fmt.Errorf("diskcache: put %016x: trim: %w", key, err)
	}
	c.puts.Add(1)
	// Post-commit media faults (silent bit rot) for the chaos harness.
	if c.faults != nil {
		c.faults.afterCommit(c.EntryPath(key))
	}
	return nil
}

// Close flushes the directory metadata (a final fsync, so every rename is
// durable before the process exits) and detaches the handle. The in-memory
// index needs no persisting — it is rebuilt from the directory on Open.
func (c *Cache) Close() error {
	return syncDir(c.dir)
}

// dropLocked removes key from the index and recency list. indexMu held.
func (c *Cache) dropLocked(key uint64) {
	if e, ok := c.index[key]; ok {
		c.lru.Remove(e.elem)
		c.sizeBytes -= e.size
		delete(c.index, key)
	}
}

// evictFor removes least-recently-used entries until `need` more on-disk
// bytes fit under the size bound, then fsyncs the directory so every delete
// is durable before the caller writes. The crash-safe ordering is
// remove-then-sync-then-write: each entry file is individually atomic, so a
// crash anywhere leaves a valid subset of entries, and the deletes land on
// disk before the bytes they made room for.
func (c *Cache) evictFor(need int64) error {
	if c.maxBytes == 0 {
		return nil
	}
	c.indexMu.Lock()
	var victims []uint64
	var freed int64
	for c.sizeBytes+need > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		key := back.Value.(uint64)
		freed += c.index[key].size
		victims = append(victims, key)
		// Unlink now (dropLocked shrinks sizeBytes) so concurrent Puts
		// don't pick the same victim; the file itself is removed after the
		// lock drops.
		c.dropLocked(key)
	}
	c.indexMu.Unlock()
	if len(victims) == 0 {
		return nil
	}
	for _, key := range victims {
		if err := os.Remove(c.EntryPath(key)); err != nil && !os.IsNotExist(err) {
			return err
		}
		c.evictions.Add(1)
	}
	c.evictedBytes.Add(freed)
	return syncDir(c.dir)
}

// writeEntry is one attempt at the atomic durable write.
func (c *Cache) writeEntry(key uint64, wire []byte) error {
	f, err := os.CreateTemp(c.dir, ".res-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		// An injected crash is the process dying mid-write: nobody is left
		// to clean up, so the temp file stays for Open's sweep to find.
		if !errors.Is(err, ErrCrashed) {
			os.Remove(tmp)
		}
		return err
	}
	if err := c.writeAll(f, wire); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.EntryPath(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(c.dir)
}

// writeAll pushes wire through the fault plan (which may delay, error,
// short-write or crash) or straight to the file when running clean.
func (c *Cache) writeAll(f *os.File, wire []byte) error {
	if c.faults == nil {
		_, err := f.Write(wire)
		return err
	}
	return c.faults.write(f, wire)
}

// readFile reads a whole entry through the fault plan.
func (c *Cache) readFile(path string) ([]byte, error) {
	if c.faults != nil {
		if err := c.faults.beforeRead(); err != nil {
			return nil, err
		}
	}
	return os.ReadFile(path)
}

// withRetry runs op, retrying transient failures with exponential backoff
// plus seeded jitter. Not-exist errors (a plain miss) and injected crashes
// (the process is "dead") pass straight through.
func (c *Cache) withRetry(op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || os.IsNotExist(err) || errors.Is(err, ErrCrashed) {
			return err
		}
		if attempt >= c.maxRetries {
			return err
		}
		c.retries.Add(1)
		time.Sleep(c.backoff(attempt))
	}
}

// backoff returns the sleep before retry `attempt`: retryBase << attempt,
// plus up to 50% jitter so synchronized retry storms decorrelate.
func (c *Cache) backoff(attempt int) time.Duration {
	d := c.retryBase << uint(attempt)
	c.jitterMu.Lock()
	j := time.Duration(c.jitter.Int63n(int64(d)/2 + 1))
	c.jitterMu.Unlock()
	return d + j
}

// encode frames a payload: magic, version, key, payload length, payload,
// then a CRC-16 over everything before it — the same CRC the CXL link and
// the checkpoint sections use, so a flip anywhere in the file fails closed.
func encode(key uint64, payload []byte) []byte {
	out := make([]byte, 0, overhead+len(payload))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint64(out, key)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	crc := cxl.UpdateCRC16(0xFFFF, out)
	return binary.LittleEndian.AppendUint16(out, crc)
}

// decode verifies an entry wire image against the key it was looked up
// under and returns the payload. Every violation wraps ErrCorrupt.
func decode(buf []byte, key uint64) ([]byte, error) {
	if len(buf) < overhead {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the frame", ErrCorrupt, len(buf))
	}
	if string(buf[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(buf[len(Magic):]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	if k := binary.LittleEndian.Uint64(buf[len(Magic)+2:]); k != key {
		return nil, fmt.Errorf("%w: entry key %016x under name for %016x", ErrCorrupt, k, key)
	}
	plen := int(binary.LittleEndian.Uint32(buf[len(Magic)+10:]))
	if len(buf) != overhead+plen {
		return nil, fmt.Errorf("%w: %d bytes for %d-byte payload", ErrCorrupt, len(buf), plen)
	}
	crc := cxl.UpdateCRC16(0xFFFF, buf[:headerLen+plen])
	if crc != binary.LittleEndian.Uint16(buf[headerLen+plen:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return buf[headerLen : headerLen+plen], nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
