package diskcache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"teco/internal/checkpoint"
)

func openTemp(t *testing.T, cfg Config) *Cache {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openTemp(t, Config{})
	payload := []byte("the tables of experiment table1 at seed 42")
	const key = 0xDEADBEEFCAFEF00D
	if _, ok, err := c.Get(key); ok || err != nil {
		t.Fatalf("Get before Put: ok=%v err=%v", ok, err)
	}
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put: ok=%v err=%v got=%q", ok, err, got)
	}
	// Re-putting identical bytes is a no-op; differing bytes are an error
	// (content-addressing violated upstream), and the stored entry stays.
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, []byte("different")); err == nil {
		t.Fatal("Put with differing payload under the same key must fail")
	}
	got, ok, _ = c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("original entry must survive a rejected conflicting Put")
	}
	st := c.Stats()
	if st.Puts != 1 || st.PutNoops != 1 {
		t.Fatalf("stats: %+v, want Puts=1 PutNoops=1", st)
	}
}

func TestReopenFindsEntries(t *testing.T) {
	dir := t.TempDir()
	c := openTemp(t, Config{Dir: dir})
	if err := c.Put(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(8, []byte("eight")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2 := openTemp(t, Config{Dir: dir})
	if c2.Len() != 2 {
		t.Fatalf("reopened cache indexes %d keys, want 2", c2.Len())
	}
	got, ok, err := c2.Get(7)
	if err != nil || !ok || string(got) != "seven" {
		t.Fatalf("reopened Get: %q %v %v", got, ok, err)
	}
}

// TestCorruptionEveryBitOffset is the satellite coverage: flip a bit at
// every byte offset of a small cached entry and assert every single damage
// site is detected by CRC and recomputed — a corrupt payload byte is never
// served. (A bit flip in the payload-length field can masquerade as
// truncation, a flip in the magic as a foreign file; all must fail closed.)
func TestCorruptionEveryBitOffset(t *testing.T) {
	payload := []byte("short cached result, every byte matters")
	const key = 42
	dir := t.TempDir()
	c := openTemp(t, Config{Dir: dir})
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	entrySize := int64(overhead + len(payload))
	for off := int64(0); off < entrySize; off++ {
		// Flip one bit in byte `off` (rotate which bit by offset so the
		// sweep exercises different positions).
		bit := off*8 + off%8
		if err := checkpoint.FlipBit(c.EntryPath(key), bit); err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		got, ok, err := c.Get(key)
		if err != nil {
			t.Fatalf("offset %d: Get error %v", off, err)
		}
		if ok {
			t.Fatalf("offset %d: corrupt entry served: %q", off, got)
		}
		// Recompute path: the caller re-Puts the canonical bytes.
		if err := c.Put(key, payload); err != nil {
			t.Fatalf("offset %d: recompute Put: %v", off, err)
		}
		got, ok, err = c.Get(key)
		if err != nil || !ok || !bytes.Equal(got, payload) {
			t.Fatalf("offset %d: after recompute: ok=%v err=%v got=%q", off, ok, err, got)
		}
	}
	if st := c.Stats(); st.CorruptDropped != entrySize {
		t.Fatalf("CorruptDropped = %d, want %d (one per damaged offset)", st.CorruptDropped, entrySize)
	}
}

// TestTruncationEveryLength removes every possible tail length and asserts
// the torn entry is always detected and recomputed.
func TestTruncationEveryLength(t *testing.T) {
	payload := []byte("truncate me at every length")
	const key = 1234
	c := openTemp(t, Config{})
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	entrySize := int64(overhead + len(payload))
	for n := int64(1); n <= entrySize; n++ {
		if err := checkpoint.TruncateTail(c.EntryPath(key), n); err != nil {
			t.Fatalf("truncate %d: %v", n, err)
		}
		got, ok, err := c.Get(key)
		if err != nil {
			t.Fatalf("truncate %d: Get error %v", n, err)
		}
		if ok {
			t.Fatalf("truncate %d: torn entry served: %q", n, got)
		}
		if err := c.Put(key, payload); err != nil {
			t.Fatalf("truncate %d: recompute: %v", n, err)
		}
	}
}

// TestCrashAtEveryByteLeavesOldOrNothing injects a crash at every byte
// offset of the wire image and asserts the atomicity contract: after
// "reboot" (Open on the same dir) the crashed key misses cleanly, every
// pre-existing entry still serves its exact prior bytes, and no temp
// residue survives the reboot sweep.
func TestCrashAtEveryByteLeavesOldOrNothing(t *testing.T) {
	prior := []byte("the entry that was already durable")
	payload := []byte("crash-safety payload")
	wireLen := int64(overhead + len(payload))
	const priorKey, crashKey = 99, 100
	for off := int64(0); off <= wireLen; off++ {
		dir := t.TempDir()
		faults := NewFaults(off)
		c, err := Open(Config{Dir: dir, Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(priorKey, prior); err != nil {
			t.Fatal(err)
		}
		faults.CrashNextWriteAfter(off)
		if err := c.Put(crashKey, payload); !errors.Is(err, ErrCrashed) {
			t.Fatalf("off %d: Put error = %v, want ErrCrashed", off, err)
		}
		// Reboot: no Close — the process died.
		c2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok, _ := c2.Get(crashKey); ok {
			t.Fatalf("off %d: torn write visible after reboot: %q", off, got)
		}
		got, ok, err := c2.Get(priorKey)
		if err != nil || !ok || !bytes.Equal(got, prior) {
			t.Fatalf("off %d: prior entry damaged by crashed write: ok=%v err=%v", off, ok, err)
		}
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".tmp") {
				t.Fatalf("off %d: temp file %s survived reboot sweep", off, e.Name())
			}
		}
		c2.Close()
	}
}

// TestTransientErrorsRetried proves the bounded-backoff loop: a write plan
// that fails every other attempt still commits, and the retry counter moves.
func TestTransientErrorsRetried(t *testing.T) {
	faults := NewFaults(1)
	faults.WriteErrEvery = 2 // attempts 2, 4, ... fail
	c := openTemp(t, Config{Faults: faults, RetryBase: 100 * time.Microsecond})
	for key := uint64(1); key <= 8; key++ {
		if err := c.Put(key, []byte{byte(key)}); err != nil {
			t.Fatalf("key %d: %v", key, err)
		}
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatal("no retries recorded despite injected transient failures")
	}
}

// TestRetryBudgetExhausted: a permanently failing write surfaces its error
// after the bounded retries rather than looping forever.
func TestRetryBudgetExhausted(t *testing.T) {
	faults := NewFaults(1)
	faults.WriteErrEvery = 1 // every attempt fails
	c := openTemp(t, Config{Faults: faults, MaxRetries: 3, RetryBase: 50 * time.Microsecond})
	start := time.Now()
	err := c.Put(5, []byte("never lands"))
	if err == nil {
		t.Fatal("Put must fail once the retry budget is exhausted")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("retry loop took %v — not bounded", d)
	}
	if _, ok, _ := c.Get(5); ok {
		t.Fatal("failed Put must not leave a visible entry")
	}
}

// TestShortWriteContained: a torn write (half the bytes, then failure) must
// never become visible under the live name, even across retries.
func TestShortWriteContained(t *testing.T) {
	faults := NewFaults(7)
	faults.ShortWriteEvery = 2
	c := openTemp(t, Config{Faults: faults, RetryBase: 50 * time.Microsecond})
	payload := bytes.Repeat([]byte("abcdefgh"), 64)
	for key := uint64(1); key <= 16; key++ {
		if err := c.Put(key, payload); err != nil {
			t.Fatalf("key %d: %v", key, err)
		}
		got, ok, err := c.Get(key)
		if err != nil || !ok || !bytes.Equal(got, payload) {
			t.Fatalf("key %d: ok=%v err=%v", key, ok, err)
		}
	}
}

// TestSilentCorruptionNeverServed runs a Put/Get workload under a plan that
// flips bits and truncates tails of committed entries, and asserts reads
// only ever return the exact canonical bytes or a miss.
func TestSilentCorruptionNeverServed(t *testing.T) {
	faults := NewFaults(3)
	faults.FlipBitEvery = 2
	faults.TruncateEvery = 3
	c := openTemp(t, Config{Faults: faults})
	canonical := func(key uint64) []byte {
		return bytes.Repeat([]byte{byte(key), byte(key >> 8)}, 128)
	}
	served := 0
	for round := 0; round < 20; round++ {
		for key := uint64(1); key <= 8; key++ {
			want := canonical(key)
			got, ok, err := c.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d key %d: served wrong bytes", round, key)
				}
				served++
			} else if err := c.Put(key, want); err != nil {
				t.Fatal(err)
			}
		}
	}
	flips, truncs := faults.Corruptions()
	if flips == 0 || truncs == 0 {
		t.Fatalf("fault plan idle: flips=%d truncs=%d", flips, truncs)
	}
	if served == 0 {
		t.Fatal("no warm hits at all — harness broken")
	}
	if st := c.Stats(); st.CorruptDropped == 0 {
		t.Fatal("no corruption detected despite injected damage")
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".res-123.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := openTemp(t, Config{Dir: dir})
	if st := c.Stats(); st.TempSwept != 1 {
		t.Fatalf("TempSwept = %d, want 1", st.TempSwept)
	}
	if _, err := os.Stat(filepath.Join(dir, ".res-123.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp residue not removed on Open")
	}
}

func TestForeignAndMisnamedFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	// A file named for key 5 but containing key 6's frame must miss.
	wire := encode(6, []byte("payload for six"))
	if err := os.WriteFile(filepath.Join(dir, "res-0000000000000005.teco"), wire, 0o644); err != nil {
		t.Fatal(err)
	}
	c := openTemp(t, Config{Dir: dir})
	if _, ok, err := c.Get(5); ok || err != nil {
		t.Fatalf("cross-named entry served: ok=%v err=%v", ok, err)
	}
	if st := c.Stats(); st.CorruptDropped != 1 {
		t.Fatalf("CorruptDropped = %d, want 1", st.CorruptDropped)
	}
}

func TestMeasureWarmLookupP99(t *testing.T) {
	p99, err := MeasureWarmLookupP99(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if p99 <= 0 {
		t.Fatalf("p99 = %d ns", p99)
	}
}
