// Package gpusim is the Accel-Sim stand-in: a calibrated V100 timing model
// producing per-phase kernel times and the schedule on which backward
// propagation emits gradient cache lines (the writeback stream the paper's
// modified Accel-Sim transfers over CXL, §VIII-A).
package gpusim

import (
	"fmt"

	"teco/internal/modelzoo"
	"teco/internal/sim"
)

// GPU is a V100-class timing model.
type GPU struct {
	// EffectiveFLOPS is sustained training throughput.
	EffectiveFLOPS float64
	// LaunchOverheadPerLayer is the fixed per-layer cost per step.
	LaunchOverheadPerLayer sim.Time
	// BackwardFraction is backward's share of fwd+bwd time.
	BackwardFraction float64
}

// V100 returns the calibrated default model.
func V100() *GPU {
	return &GPU{
		EffectiveFLOPS:         modelzoo.GPUEffectiveFLOPS,
		LaunchOverheadPerLayer: sim.FromSeconds(modelzoo.GPULaunchOverheadPerLayerMs / 1e3),
		BackwardFraction:       modelzoo.BackwardFraction,
	}
}

// StepComputeTime returns total fwd+bwd time for one training step.
func (g *GPU) StepComputeTime(m modelzoo.Model, batch int) sim.Time {
	if batch <= 0 && !m.FullGraphOnly {
		panic(fmt.Sprintf("gpusim: batch %d", batch))
	}
	flopsTime := sim.FromSeconds(m.StepFLOPs(batch) / g.EffectiveFLOPS)
	fixed := sim.Time(int64(m.Layers)) * g.LaunchOverheadPerLayer
	return flopsTime + fixed
}

// ForwardTime returns the forward-pass time.
func (g *GPU) ForwardTime(m modelzoo.Model, batch int) sim.Time {
	total := g.StepComputeTime(m, batch)
	return total - g.BackwardTime(m, batch)
}

// BackwardTime returns the backward-pass time.
func (g *GPU) BackwardTime(m modelzoo.Model, batch int) sim.Time {
	total := g.StepComputeTime(m, batch)
	return sim.Time(float64(total) * g.BackwardFraction)
}

// GradChunk is a block of gradients becoming available during backward.
type GradChunk struct {
	// ReadyAt is the offset from the start of backward at which the
	// chunk's last gradient is produced.
	ReadyAt sim.Time
	// Bytes is the chunk's transfer volume.
	Bytes int64
	// Layer is the producing layer (layers finish in reverse order).
	Layer int
}

// GradientSchedule returns per-layer gradient chunks: layer L-1 finishes
// first (backward walks the model in reverse), each layer producing an
// equal parameter share at an equally spaced point of the backward pass.
// The final chunk lands exactly at BackwardTime.
func (g *GPU) GradientSchedule(m modelzoo.Model, batch int) []GradChunk {
	bwd := g.BackwardTime(m, batch)
	n := m.Layers
	per := m.GradBytes() / int64(n)
	rem := m.GradBytes() - per*int64(n)
	chunks := make([]GradChunk, 0, n)
	for i := 0; i < n; i++ {
		b := per
		if i == n-1 {
			b += rem
		}
		chunks = append(chunks, GradChunk{
			ReadyAt: sim.Time(int64(bwd) * int64(i+1) / int64(n)),
			Bytes:   b,
			Layer:   n - 1 - i,
		})
	}
	return chunks
}
