package gpusim

import (
	"testing"

	"teco/internal/cxl"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/sim"
	"teco/internal/trace"
)

// smallModel keeps hierarchy tests fast: 2M params = 131072 lines (8 MB,
// exceeding the 6 MB L2 so evictions stream).
func smallModel() modelzoo.Model {
	m := modelzoo.GPT2()
	m.Params, m.ComputeParams = 2e6, 2e6
	return m
}

func runBackward(t *testing.T) (*GradientHierarchySim, *trace.Trace, mem.Region) {
	t.Helper()
	m := smallModel()
	amap := mem.NewMap()
	region := amap.Allocate("grads", mem.RegionGiantCache, m.GradBytes())
	g := NewGradientHierarchySim()
	tr := g.RunBackward(V100(), m, 4, region)
	return g, tr, region
}

// TestGradientWritebacksCoverAllLines: every gradient line written by
// backward surfaces exactly once (eviction or fence flush).
func TestGradientWritebacksCoverAllLines(t *testing.T) {
	_, tr, region := runBackward(t)
	if int64(tr.Len()) != region.Lines() {
		t.Fatalf("writebacks = %d, want %d", tr.Len(), region.Lines())
	}
	seen := map[mem.LineAddr]bool{}
	for _, r := range tr.Records() {
		if !region.ContainsLine(r.Line) {
			t.Fatalf("off-region line %d in gradient trace", r.Line)
		}
		if seen[r.Line] {
			t.Fatalf("line %d written back twice", r.Line)
		}
		seen[r.Line] = true
	}
}

// TestGradientWritebacksStreamDuringBackward: with activation pressure on
// the L2, most gradient lines leave the GPU while backward still runs —
// the fine-grained overlap the update protocol exploits.
func TestGradientWritebacksStreamDuringBackward(t *testing.T) {
	g, tr, _ := runBackward(t)
	end := g.Now()
	early := 0
	for _, r := range tr.Records() {
		if r.At < end {
			early++
		}
	}
	if frac := float64(early) / float64(tr.Len()); frac < 0.5 {
		t.Fatalf("only %.2f of gradient lines streamed before the fence", frac)
	}
}

// TestGradientTraceReplayMatchesEngineScale: replaying the L2-level trace
// over the CXL link lands in the same exposure regime as the engine's
// layer-granular model (same order of magnitude, same sign of exposure).
func TestGradientTraceReplayMatchesEngineScale(t *testing.T) {
	m := smallModel()
	amap := mem.NewMap()
	region := amap.Allocate("grads", mem.RegionGiantCache, m.GradBytes())
	g := NewGradientHierarchySim()
	gpu := V100()
	tr := g.RunBackward(gpu, m, 4, region)

	link := cxl.NewLink(sim.New(), modelzoo.CXLLinkBandwidth(), cxl.DefaultQueueCap)
	res := trace.ReplayOverCXL(tr, link, mem.LineSize, 0)
	bwd := gpu.BackwardTime(m, 4)
	// 8 MB over 15.09 GB/s ~= 0.53 ms; backward for the small model is
	// longer, so the transfer must hide almost entirely: the replay
	// finishes within a small tail after the last writeback.
	if res.Finish > bwd+res.ExposedAfter {
		t.Fatalf("replay finish %v beyond backward %v + tail %v", res.Finish, bwd, res.ExposedAfter)
	}
	if res.ExposedAfter > bwd/10 {
		t.Fatalf("drain tail %v should be small next to backward %v", res.ExposedAfter, bwd)
	}
}
