package gpusim

import (
	"testing"

	"teco/internal/modelzoo"
	"teco/internal/sim"
)

func TestStepComputeTimeScaling(t *testing.T) {
	g := V100()
	m := modelzoo.BertLargeCased()
	t4 := g.StepComputeTime(m, 4)
	t8 := g.StepComputeTime(m, 8)
	// Affine in batch: fixed launch overhead + linear FLOPs term.
	fixed := sim.Time(int64(m.Layers)) * g.LaunchOverheadPerLayer
	lin4, lin8 := t4-fixed, t8-fixed
	if diff := lin8 - 2*lin4; diff < -10 || diff > 10 { // ps-level rounding only
		t.Fatalf("flops term not linear: t4=%v t8=%v fixed=%v", t4, t8, fixed)
	}
	if t8 >= 2*t4 {
		t.Fatal("fixed overhead must make small batches relatively slower")
	}
}

// TestBertCalibration keeps the Table I calibration honest: Bert-large at
// batch 4 should take ~90-100 ms of fwd+bwd on the modelled V100.
func TestBertCalibration(t *testing.T) {
	g := V100()
	m := modelzoo.BertLargeCased()
	got := g.StepComputeTime(m, 4).Milliseconds()
	if got < 70 || got > 130 {
		t.Fatalf("Bert-large b4 compute = %.1fms, calibration drifted", got)
	}
}

func TestForwardBackwardSplit(t *testing.T) {
	g := V100()
	m := modelzoo.GPT2()
	total := g.StepComputeTime(m, 8)
	fwd := g.ForwardTime(m, 8)
	bwd := g.BackwardTime(m, 8)
	if fwd+bwd != total {
		t.Fatalf("fwd %v + bwd %v != total %v", fwd, bwd, total)
	}
	// Backward ~2x forward.
	ratio := float64(bwd) / float64(fwd)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("bwd/fwd = %.2f, want ~2", ratio)
	}
}

func TestBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	V100().StepComputeTime(modelzoo.GPT2(), 0)
}

func TestGCNIIBatchIndependent(t *testing.T) {
	g := V100()
	m := modelzoo.GCNII()
	if g.StepComputeTime(m, 0) != g.StepComputeTime(m, 99) {
		t.Fatal("full-graph model must ignore batch")
	}
}

func TestGradientSchedule(t *testing.T) {
	g := V100()
	m := modelzoo.BertLargeCased()
	chunks := g.GradientSchedule(m, 4)
	if len(chunks) != m.Layers {
		t.Fatalf("%d chunks, want %d", len(chunks), m.Layers)
	}
	var total int64
	bwd := g.BackwardTime(m, 4)
	prev := sim.Time(-1)
	for i, c := range chunks {
		total += c.Bytes
		if c.ReadyAt <= prev {
			t.Fatalf("chunk %d not monotonically later", i)
		}
		prev = c.ReadyAt
		if c.ReadyAt > bwd {
			t.Fatalf("chunk %d ready after backward ends", i)
		}
	}
	if total != m.GradBytes() {
		t.Fatalf("chunk bytes %d != grad bytes %d", total, m.GradBytes())
	}
	// Backward visits layers in reverse: first chunk is the last layer.
	if chunks[0].Layer != m.Layers-1 || chunks[len(chunks)-1].Layer != 0 {
		t.Fatal("layer order must be reversed")
	}
	if chunks[len(chunks)-1].ReadyAt != bwd {
		t.Fatal("last chunk must land exactly at backward end")
	}
}
