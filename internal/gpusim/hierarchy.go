package gpusim

import (
	"teco/internal/cache"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/sim"
	"teco/internal/trace"
)

// GradientHierarchySim is the Accel-Sim-side counterpart of
// cpusim.HierarchySim: "Accel-Sim is modified to transfer the updated
// gradients over CXL whenever the corresponding cache line is written back
// to the giant cache region in GPU memory" (§VIII-A). Backward writes each
// gradient line once, interleaved with activation traffic that pressures
// the GPU L2; dirty gradient lines surface as timed writebacks when the L2
// evicts them, plus the end-of-backward flush that CXLFENCE waits on.
type GradientHierarchySim struct {
	L2 *cache.Cache
	// ActivationAccessesPerLine is the number of activation-region L2
	// accesses interleaved per gradient line (capacity pressure).
	ActivationAccessesPerLine int
	now                       sim.Time
}

// V100L2 returns the V100's 6 MB, 16-way L2 geometry.
func V100L2() cache.Config {
	return cache.Config{Name: "gpu-L2", SizeBytes: 6 << 20, Ways: 16}
}

// NewGradientHierarchySim builds the model with V100 L2 geometry.
func NewGradientHierarchySim() *GradientHierarchySim {
	return &GradientHierarchySim{L2: cache.New(V100L2()), ActivationAccessesPerLine: 8}
}

// Now returns the simulated GPU time.
func (g *GradientHierarchySim) Now() sim.Time { return g.now }

// RunBackward simulates the backward pass of model m at the given batch:
// layers complete in reverse order on the GPU compute schedule; each
// layer's gradient lines are written into the giant-cache region through
// the L2. It returns the timed trace of gradient-region writebacks.
func (g *GradientHierarchySim) RunBackward(gpu *GPU, m modelzoo.Model, batch int, gradRegion mem.Region) *trace.Trace {
	tr := &trace.Trace{}
	amapIn := func(l mem.LineAddr) bool { return gradRegion.ContainsLine(l) }
	// Activation region: addresses far above the gradient region.
	actBase := gradRegion.End().Line() + 1<<20

	record := func(ev cache.Eviction, evicted bool) {
		if evicted && ev.Dirty && amapIn(ev.Addr) {
			tr.Append(g.now, trace.Store, ev.Addr)
		}
	}

	chunks := gpu.GradientSchedule(m, batch)
	next := gradRegion.Base.Line()
	var prevReady sim.Time
	actCursor := mem.LineAddr(0)
	for _, ch := range chunks {
		lines := mem.LinesIn(ch.Bytes)
		window := ch.ReadyAt - prevReady
		for i := int64(0); i < lines; i++ {
			// Time advances uniformly across the layer's window.
			g.now = prevReady + sim.Time(int64(window)*(i+1)/lines)
			// Activation traffic pressures the L2 between gradient
			// writes (streaming, never reused -> pure pollution).
			for a := 0; a < g.ActivationAccessesPerLine; a++ {
				_, ev, evd := g.L2.Access(actBase+actCursor, a%4 == 0)
				record(ev, evd)
				actCursor++
			}
			_, ev, evd := g.L2.Access(next, true)
			record(ev, evd)
			next++
		}
		prevReady = ch.ReadyAt
	}
	// End-of-backward flush: CXLFENCE drains the remaining dirty
	// gradient lines.
	for _, ev := range g.L2.FlushAll() {
		if ev.Dirty && amapIn(ev.Addr) {
			tr.Append(g.now, trace.Store, ev.Addr)
		}
	}
	return tr
}
